//! Perf-trajectory harness for the parallel PRR engine.
//!
//! Generates a preferential-attachment network, then for each thread count
//! in the sweep samples a large PRR-graph pool through the streaming
//! shard→arena pipeline, recording build time, build throughput and peak
//! pool-build memory, plus greedy `Δ̂` selection time (inverted coverage
//! index). One legacy-pipeline run (per-graph `CompressedPrr` payloads
//! copied into the arena) is measured as the baseline, and its arena must
//! be byte-equal to the shard-built one — as must the arenas across all
//! thread counts, so a CI smoke run of this binary doubles as a
//! determinism check. Results go to `BENCH_prr.json`, committed alongside
//! the code so the perf trajectory of the hot path is tracked across PRs.
//!
//! ```text
//! cargo run --release -p kboost-bench --bin exp_perf -- \
//!     [--nodes N] [--samples N] [--k N] [--threads 1,2,4] [--seed N] \
//!     [--skip-legacy] [--out PATH]
//! ```

use std::time::Instant;

use kboost_core::PrrPool;
use kboost_graph::generators::preferential_attachment;
use kboost_graph::probability::ProbabilityModel;
use kboost_prr::{
    greedy_delta_selection, greedy_delta_selection_naive, CompressedPrr, LegacyPrrSource,
    PrrFullSource,
};
use kboost_rrset::seeds::select_random_nodes;
use kboost_rrset::sketch::SketchPool;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct PerfOpts {
    nodes: usize,
    samples: u64,
    k: usize,
    threads: Vec<usize>,
    seed: u64,
    legacy_baseline: bool,
    out: String,
}

fn default_thread_sweep() -> Vec<usize> {
    let nproc = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut sweep = vec![1usize, 2, 4, nproc];
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

fn parse_args() -> PerfOpts {
    let mut opts = PerfOpts {
        nodes: 60_000,
        samples: 120_000,
        k: 100,
        threads: default_thread_sweep(),
        seed: 42,
        legacy_baseline: true,
        out: "BENCH_prr.json".to_string(),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let next = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match flag {
            "--nodes" => opts.nodes = next(&mut i).parse().expect("--nodes N"),
            "--samples" => opts.samples = next(&mut i).parse().expect("--samples N"),
            "--k" => opts.k = next(&mut i).parse().expect("--k N"),
            "--threads" => {
                opts.threads = next(&mut i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads N[,N...]"))
                    .collect();
                assert!(
                    !opts.threads.is_empty(),
                    "--threads needs at least one value"
                );
            }
            "--seed" => opts.seed = next(&mut i).parse().expect("--seed N"),
            "--skip-legacy" => opts.legacy_baseline = false,
            "--out" => opts.out = next(&mut i),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    opts
}

/// One thread-count measurement of the shard pipeline.
struct SweepPoint {
    threads: usize,
    build_secs: f64,
    build_samples_per_sec: f64,
    build_peak_bytes: usize,
    select_secs: f64,
}

fn main() {
    let opts = parse_args();

    let mut rng = SmallRng::seed_from_u64(opts.seed);
    // Digg-calibrated log-normal probabilities (Table 1) — kept over
    // WeightedCascade (fixed since the PA generator gained its
    // second-pass probability assignment) so the perf trajectory stays
    // comparable across PRs.
    let g = preferential_attachment(
        opts.nodes,
        4,
        0.15,
        ProbabilityModel::LogNormal {
            mu: -1.93,
            sigma: 1.0,
            cap: 1.0,
        },
        2.0,
        &mut rng,
    );
    let seeds = select_random_nodes(&g, 50, &[], opts.seed ^ 0x5EED);
    eprintln!(
        "graph: {} nodes, {} edges; {} seeds, k = {}, thread sweep {:?}",
        g.num_nodes(),
        g.num_edges(),
        seeds.len(),
        opts.k,
        opts.threads,
    );

    let source = PrrFullSource::new(&g, &seeds, opts.k);
    let mut sweep: Vec<SweepPoint> = Vec::new();
    let mut reference: Option<(PrrPool, kboost_prr::DeltaSelection)> = None;
    for &threads in &opts.threads {
        // Sampling builds the arena in place: shard construction inside the
        // workers, chunk-ordered absorbs on merge, and a final move into
        // the pool. Peak pool-build memory is the arena plus the covers
        // (both alive until `PrrPool::new` drops the covers).
        let t0 = Instant::now();
        let mut sketches = SketchPool::new(opts.seed, threads);
        sketches.extend_to(&source, opts.samples);
        let build_secs = t0.elapsed().as_secs_f64();
        let build_peak_bytes = sketches.shard().memory_bytes() + sketches.cover_memory_bytes();
        let pool = PrrPool::new(sketches, g.num_nodes(), threads);

        let t1 = Instant::now();
        let selection = greedy_delta_selection(pool.arena(), g.num_nodes(), opts.k, threads);
        let select_secs = t1.elapsed().as_secs_f64();

        eprintln!(
            "[{threads} threads] sampled {} PRR-graphs ({} boostable) in {build_secs:.2}s \
             (peak build {:.1} MiB); Δ̂ selection {select_secs:.3}s covering {} graphs",
            pool.total_samples(),
            pool.num_boostable(),
            build_peak_bytes as f64 / (1024.0 * 1024.0),
            selection.covered,
        );
        sweep.push(SweepPoint {
            threads,
            build_secs,
            build_samples_per_sec: pool.total_samples() as f64 / build_secs.max(1e-9),
            build_peak_bytes,
            select_secs,
        });

        match &reference {
            None => {
                // Once per config: the indexed selection must match the
                // naive full re-traversal greedy.
                let t2 = Instant::now();
                let naive = greedy_delta_selection_naive(pool.arena(), g.num_nodes(), opts.k);
                let naive_secs = t2.elapsed().as_secs_f64();
                assert_eq!(
                    selection, naive,
                    "index-accelerated selection diverged from the naive baseline"
                );
                eprintln!(
                    "selection cross-check: indexed {select_secs:.3}s vs naive {naive_secs:.3}s \
                     → {:.1}x",
                    naive_secs / select_secs.max(1e-9)
                );
                reference = Some((pool, selection));
            }
            Some((reference, ref_selection)) => {
                // The determinism contract, live: any thread count must
                // produce the bit-identical arena and the same selection.
                assert!(
                    pool.arena() == reference.arena(),
                    "shard pipeline non-deterministic: arena at {threads} threads \
                     differs from {} threads",
                    sweep[0].threads,
                );
                assert_eq!(pool.total_samples(), reference.total_samples());
                assert_eq!(
                    &selection, ref_selection,
                    "greedy Δ̂ selection differs at {threads} threads"
                );
            }
        }
    }
    let (reference, selection) = reference.expect("at least one sweep entry");

    // Legacy baseline: per-graph payloads + copy stage, at the fastest
    // thread count. Peak memory additionally holds every standalone
    // `CompressedPrr` (plus its struct/Vec headers) while the arena is
    // copied together.
    let mut legacy_json = String::new();
    if opts.legacy_baseline {
        let threads = *opts.threads.iter().max().unwrap();
        let legacy_source = LegacyPrrSource::new(&g, &seeds, opts.k);
        let t0 = Instant::now();
        let mut sketches = SketchPool::new(opts.seed, threads);
        sketches.extend_to(&legacy_source, opts.samples);
        let sample_secs = t0.elapsed().as_secs_f64();
        let payload_bytes: usize = sketches
            .shard()
            .iter()
            .map(|c| c.memory_bytes() + std::mem::size_of::<CompressedPrr>())
            .sum();
        let cover_bytes = sketches.cover_memory_bytes();
        let t1 = Instant::now();
        let pool = PrrPool::from_legacy(sketches, g.num_nodes(), threads);
        let copy_secs = t1.elapsed().as_secs_f64();
        let peak = payload_bytes + cover_bytes + pool.memory_bytes();
        assert!(
            pool.arena() == reference.arena(),
            "shard-built arena diverged from the legacy copy-built arena"
        );
        let shard_peak = sweep
            .iter()
            .find(|p| p.threads == threads)
            .map_or(sweep[0].build_peak_bytes, |p| p.build_peak_bytes);
        eprintln!(
            "legacy baseline [{threads} threads]: sampled in {sample_secs:.2}s + {copy_secs:.3}s \
             arena copy; peak build {:.1} MiB vs shard {:.1} MiB ({:.2}x)",
            peak as f64 / (1024.0 * 1024.0),
            shard_peak as f64 / (1024.0 * 1024.0),
            peak as f64 / shard_peak.max(1) as f64,
        );
        legacy_json = format!(
            ",\n  \"legacy_baseline\": {{\n    \"threads\": {threads},\n    \
             \"sample_secs\": {sample_secs:.4},\n    \"arena_copy_secs\": {copy_secs:.4},\n    \
             \"build_peak_bytes\": {peak},\n    \"peak_vs_shard\": {:.4}\n  }}",
            peak as f64 / shard_peak.max(1) as f64,
        );
    }

    let delta_hat = reference.delta_hat(&selection.selected);
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "    {{ \"threads\": {}, \"build_secs\": {:.4}, \
                 \"build_samples_per_sec\": {:.1}, \"build_peak_bytes\": {}, \
                 \"select_secs\": {:.4} }}",
                p.threads, p.build_secs, p.build_samples_per_sec, p.build_peak_bytes, p.select_secs,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"nodes\": {},\n  \"edges\": {},\n  \"num_seeds\": {},\n  \"k\": {},\n  \
         \"seed\": {},\n  \"samples\": {},\n  \"boostable\": {},\n  \"arena_edges\": {},\n  \
         \"arena_bytes\": {},\n  \"delta_hat\": {:.4},\n  \"thread_sweep\": [\n{}\n  ]{}\n}}\n",
        g.num_nodes(),
        g.num_edges(),
        seeds.len(),
        opts.k,
        opts.seed,
        reference.total_samples(),
        reference.num_boostable(),
        reference.arena().total_edges(),
        reference.memory_bytes(),
        delta_hat,
        sweep_json.join(",\n"),
        legacy_json,
    );
    std::fs::write(&opts.out, &json).expect("write BENCH_prr.json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);
}
