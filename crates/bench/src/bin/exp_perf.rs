//! Perf-trajectory harness for the parallel PRR engine, driven entirely
//! through the unified `kboost-engine` API.
//!
//! Generates a preferential-attachment network, then for each thread
//! count in the sweep builds an [`Engine`] with fixed-size sampling and
//! solves PRR-Boost through it, recording the pool build time, build
//! throughput and peak pool-build memory plus greedy `Δ̂` selection time
//! from the solution's [`SolveStats`]. One engine configured with the
//! **legacy pipeline** (per-graph `CompressedPrr` payloads copied into
//! the arena) is measured as the baseline, and its arena must be
//! byte-equal to the shard-built one — as must the arenas across all
//! thread counts, so a CI smoke run of this binary doubles as a
//! determinism check. The indexed selection is additionally cross-checked
//! against the naive re-traversal greedy (the deep-path oracle). A
//! **deadline curve** then solves the same instance through
//! `Engine::solve_within` under sample budgets of ⅛, ¼ and ½ of the full
//! target, recording the samples each budget bought and the achieved ε
//! they certify. Results go to `BENCH_prr.json`, committed alongside the
//! code so the perf trajectory of the hot path is tracked across PRs.
//!
//! ```text
//! cargo run --release -p kboost-bench --bin exp_perf -- \
//!     [--nodes N] [--samples N] [--k N] [--threads 1,2,4] [--seed N] \
//!     [--skip-legacy] [--out PATH]
//! ```
//!
//! [`Engine`]: kboost_engine::Engine
//! [`SolveStats`]: kboost_engine::SolveStats

use kboost_engine::{Algorithm, Budget, EngineBuilder, Pipeline, Sampling, Solution};
use kboost_graph::generators::preferential_attachment;
use kboost_graph::probability::ProbabilityModel;
use kboost_graph::{DiGraph, NodeId};
use kboost_prr::{
    greedy_delta_selection_naive, FootprintMode, PrrArena, PrrArenaShard, PrrFullSource,
};
use kboost_rrset::seeds::select_random_nodes;
use kboost_rrset::sketch::SketchPool;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct PerfOpts {
    nodes: usize,
    samples: u64,
    k: usize,
    threads: Vec<usize>,
    seed: u64,
    legacy_baseline: bool,
    out: String,
}

fn default_thread_sweep() -> Vec<usize> {
    let nproc = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut sweep = vec![1usize, 2, 4, nproc];
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

fn parse_args() -> PerfOpts {
    let mut opts = PerfOpts {
        nodes: 60_000,
        samples: 120_000,
        k: 100,
        threads: default_thread_sweep(),
        seed: 42,
        legacy_baseline: true,
        out: "BENCH_prr.json".to_string(),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let next = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match flag {
            "--nodes" => opts.nodes = next(&mut i).parse().expect("--nodes N"),
            "--samples" => opts.samples = next(&mut i).parse().expect("--samples N"),
            "--k" => opts.k = next(&mut i).parse().expect("--k N"),
            "--threads" => {
                opts.threads = next(&mut i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads N[,N...]"))
                    .collect();
                assert!(
                    !opts.threads.is_empty(),
                    "--threads needs at least one value"
                );
            }
            "--seed" => opts.seed = next(&mut i).parse().expect("--seed N"),
            "--skip-legacy" => opts.legacy_baseline = false,
            "--out" => opts.out = next(&mut i),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    opts
}

/// One thread-count measurement of the shard pipeline.
struct SweepPoint {
    threads: usize,
    build_secs: f64,
    build_samples_per_sec: f64,
    build_peak_bytes: usize,
    select_secs: f64,
}

/// An engine over `g` at the given thread count and pipeline — the whole
/// hand-wired `SketchPool → PrrPool → greedy` stack behind one call.
fn build_engine(
    g: &DiGraph,
    seeds: &[NodeId],
    opts: &PerfOpts,
    threads: usize,
    pipeline: Pipeline,
) -> kboost_engine::Engine {
    EngineBuilder::new(g.clone())
        .seeds(seeds.to_vec())
        .k(opts.k)
        .threads(threads)
        .seed(opts.seed)
        .sampling(Sampling::Fixed {
            samples: opts.samples,
        })
        .pipeline(pipeline)
        .build()
        .expect("valid engine configuration")
}

fn main() {
    let opts = parse_args();

    let mut rng = SmallRng::seed_from_u64(opts.seed);
    // Digg-calibrated log-normal probabilities (Table 1) — kept over
    // WeightedCascade (fixed since the PA generator gained its
    // second-pass probability assignment) so the perf trajectory stays
    // comparable across PRs.
    let g = preferential_attachment(
        opts.nodes,
        4,
        0.15,
        ProbabilityModel::LogNormal {
            mu: -1.93,
            sigma: 1.0,
            cap: 1.0,
        },
        2.0,
        &mut rng,
    );
    let seeds = select_random_nodes(&g, 50, &[], opts.seed ^ 0x5EED);
    eprintln!(
        "graph: {} nodes, {} edges; {} seeds, k = {}, thread sweep {:?}",
        g.num_nodes(),
        g.num_edges(),
        seeds.len(),
        opts.k,
        opts.threads,
    );

    // Kernel ≡ scalar oracle, in-bench: capped-target pools at 1 and 7
    // threads, footprints off and on, must match byte-for-byte (covers and
    // arena storage arrays, footprint columns included) before any timing
    // is trusted.
    let equiv_target = opts.samples.min(2_048);
    for threads in [1usize, 7] {
        for mode in [FootprintMode::Off, FootprintMode::Sorted] {
            let kernel_src = PrrFullSource::with_footprints(&g, &seeds, opts.k, mode);
            let scalar_src = PrrFullSource::scalar_oracle(&g, &seeds, opts.k, mode);
            let mut kernel_pool: SketchPool<PrrArenaShard> = SketchPool::new(opts.seed, threads);
            kernel_pool.extend_to(&kernel_src, equiv_target);
            let mut scalar_pool: SketchPool<PrrArenaShard> = SketchPool::new(opts.seed, threads);
            scalar_pool.extend_to(&scalar_src, equiv_target);
            assert_eq!(
                kernel_pool.covers(),
                scalar_pool.covers(),
                "kernel covers diverged from scalar oracle ({threads} threads, {mode:?})"
            );
            let (_, kernel_shard, _, _) = kernel_pool.into_parts();
            let (_, scalar_shard, _, _) = scalar_pool.into_parts();
            assert!(
                PrrArena::from_shard(kernel_shard) == PrrArena::from_shard(scalar_shard),
                "kernel arena diverged from scalar oracle ({threads} threads, {mode:?})"
            );
        }
    }
    eprintln!(
        "kernel ≡ scalar oracle verified over {equiv_target} samples at 1 and 7 threads, \
         footprints off and on"
    );

    // Dedicated single-thread A/B: the same capped workload through the
    // scalar loop and through the kernel, for the kernel_speedup figure.
    let speed_target = opts.samples.min(8_192);
    let scalar_src = PrrFullSource::scalar_oracle(&g, &seeds, opts.k, FootprintMode::Off);
    let t = std::time::Instant::now();
    let mut scalar_pool: SketchPool<PrrArenaShard> = SketchPool::new(opts.seed, 1);
    scalar_pool.extend_to(&scalar_src, speed_target);
    let scalar_secs = t.elapsed().as_secs_f64();
    let kernel_src = PrrFullSource::new(&g, &seeds, opts.k);
    let t = std::time::Instant::now();
    let mut kernel_pool: SketchPool<PrrArenaShard> = SketchPool::new(opts.seed, 1);
    kernel_pool.extend_to(&kernel_src, speed_target);
    let kernel_secs = t.elapsed().as_secs_f64();
    let kernel_speedup = scalar_secs / kernel_secs.max(1e-9);
    let ab_kernel_rate = speed_target as f64 / kernel_secs.max(1e-9);
    eprintln!(
        "single-thread A/B over {speed_target} samples: scalar {scalar_secs:.2}s \
         ({:.1}/s) vs kernel {kernel_secs:.2}s ({ab_kernel_rate:.1}/s) → {kernel_speedup:.2}x",
        speed_target as f64 / scalar_secs.max(1e-9),
    );
    drop((scalar_pool, kernel_pool));

    let mut sweep: Vec<SweepPoint> = Vec::new();
    let mut reference: Option<(kboost_engine::Engine, Solution)> = None;
    for &threads in &opts.threads {
        // The engine builds the arena in place during sampling (shard
        // construction inside the workers, chunk-ordered absorbs on
        // merge, a final move into the pool) and reports build/select
        // timing and peak pool-build memory on the solution.
        let mut engine = build_engine(&g, &seeds, &opts, threads, Pipeline::Shard);
        let solution = engine.solve(&Algorithm::PrrBoost).expect("solve");
        let stats = solution.stats;

        eprintln!(
            "[{threads} threads] sampled {} PRR-graphs ({} boostable) in {:.2}s \
             (peak build {:.1} MiB); Δ̂ selection {:.3}s covering {} graphs",
            stats.total_samples,
            stats.boostable,
            stats.build_secs,
            stats.build_peak_bytes as f64 / (1024.0 * 1024.0),
            stats.select_secs,
            stats.covered,
        );
        sweep.push(SweepPoint {
            threads,
            build_secs: stats.build_secs,
            build_samples_per_sec: stats.total_samples as f64 / stats.build_secs.max(1e-9),
            build_peak_bytes: stats.build_peak_bytes,
            select_secs: stats.select_secs,
        });

        match &reference {
            None => {
                // Once per config: the indexed selection must match the
                // naive full re-traversal greedy (deep-path oracle).
                let t2 = std::time::Instant::now();
                let pool = engine.pool().expect("pool built");
                let naive = greedy_delta_selection_naive(pool.arena(), g.num_nodes(), opts.k);
                let naive_secs = t2.elapsed().as_secs_f64();
                assert_eq!(
                    solution.boost_set, naive.selected,
                    "index-accelerated selection diverged from the naive baseline"
                );
                assert_eq!(stats.covered, naive.covered);
                eprintln!(
                    "selection cross-check: indexed {:.3}s vs naive {naive_secs:.3}s → {:.1}x",
                    stats.select_secs,
                    naive_secs / stats.select_secs.max(1e-9)
                );
                reference = Some((engine, solution));
            }
            Some((ref_engine, ref_solution)) => {
                // The determinism contract, live: any thread count must
                // produce the bit-identical arena and the same selection.
                let ref_pool = ref_engine.pool_if_built().expect("reference pool built");
                let pool = engine.pool().expect("pool built");
                assert!(
                    pool.arena() == ref_pool.arena(),
                    "shard pipeline non-deterministic: arena at {threads} threads \
                     differs from {} threads",
                    sweep[0].threads,
                );
                assert_eq!(pool.total_samples(), ref_pool.total_samples());
                assert_eq!(
                    solution.boost_set, ref_solution.boost_set,
                    "greedy Δ̂ selection differs at {threads} threads"
                );
                assert_eq!(solution.stats.covered, ref_solution.stats.covered);
            }
        }
    }
    let (mut ref_engine, ref_solution) = reference.expect("at least one sweep entry");

    // Legacy baseline: the same engine API over the per-graph payload
    // pipeline (sample into standalone `CompressedPrr`, then copy into
    // the arena), at the fastest thread count. Peak memory additionally
    // holds every payload while the arena is copied together.
    let mut legacy_json = String::new();
    if opts.legacy_baseline {
        let threads = *opts.threads.iter().max().unwrap();
        let mut legacy = build_engine(&g, &seeds, &opts, threads, Pipeline::Legacy);
        let legacy_solution = legacy.solve(&Algorithm::PrrBoost).expect("solve");
        let lstats = legacy_solution.stats;
        assert!(
            legacy.pool_if_built().expect("legacy pool").arena()
                == ref_engine.pool_if_built().expect("reference pool").arena(),
            "shard-built arena diverged from the legacy copy-built arena"
        );
        assert_eq!(
            legacy_solution.boost_set, ref_solution.boost_set,
            "legacy-pipeline selection diverged from the shard pipeline"
        );
        let shard_peak = sweep
            .iter()
            .find(|p| p.threads == threads)
            .map_or(sweep[0].build_peak_bytes, |p| p.build_peak_bytes);
        eprintln!(
            "legacy baseline [{threads} threads]: sampled in {:.2}s + {:.3}s arena copy; \
             peak build {:.1} MiB vs shard {:.1} MiB ({:.2}x)",
            lstats.build_secs,
            lstats.convert_secs,
            lstats.build_peak_bytes as f64 / (1024.0 * 1024.0),
            shard_peak as f64 / (1024.0 * 1024.0),
            lstats.build_peak_bytes as f64 / shard_peak.max(1) as f64,
        );
        legacy_json = format!(
            ",\n  \"legacy_baseline\": {{\n    \"threads\": {threads},\n    \
             \"sample_secs\": {:.4},\n    \"arena_copy_secs\": {:.4},\n    \
             \"build_peak_bytes\": {},\n    \"peak_vs_shard\": {:.4}\n  }}",
            lstats.build_secs,
            lstats.convert_secs,
            lstats.build_peak_bytes,
            lstats.build_peak_bytes as f64 / shard_peak.max(1) as f64,
        );
    }

    // Deadline curve: what accuracy a latency budget actually buys.
    // Fresh engines solve under sample budgets of ⅛, ¼ and ½ of the full
    // target through `solve_within`; the full-target reference solution
    // is the curve's last point. Each point records the samples the
    // budget bought and the honest ε they certify — achieved ε must
    // shrink monotonically as the budget grows (the CI json gate).
    let curve_threads = *opts.threads.iter().max().unwrap();
    let mut curve_json: Vec<String> = Vec::new();
    for denom in [8u64, 4, 2] {
        let budget_samples = (opts.samples / denom).max(1);
        let mut engine = build_engine(&g, &seeds, &opts, curve_threads, Pipeline::Shard);
        let solution = engine
            .solve_within(
                &Algorithm::PrrBoost,
                &Budget::unlimited().max_samples(budget_samples),
            )
            .expect("budgeted solve");
        assert!(
            solution.stats.interrupted,
            "a {budget_samples}-sample budget under a {}-sample target must interrupt",
            opts.samples
        );
        let eps = solution
            .stats
            .achieved_epsilon
            .expect("budgeted PRR solve certifies an ε");
        eprintln!(
            "deadline curve [budget {budget_samples}]: {} samples in {:.2}s, achieved ε {:.4}",
            solution.stats.total_samples, solution.stats.build_secs, eps,
        );
        curve_json.push(format!(
            "    {{ \"budget_samples\": {}, \"samples\": {}, \"achieved_epsilon\": {:.6}, \
             \"interrupted\": true, \"build_secs\": {:.4} }}",
            budget_samples, solution.stats.total_samples, eps, solution.stats.build_secs,
        ));
    }
    let full_eps = ref_solution
        .stats
        .achieved_epsilon
        .expect("full PRR solve certifies an ε");
    curve_json.push(format!(
        "    {{ \"budget_samples\": {}, \"samples\": {}, \"achieved_epsilon\": {:.6}, \
         \"interrupted\": false, \"build_secs\": {:.4} }}",
        opts.samples, ref_solution.stats.total_samples, full_eps, ref_solution.stats.build_secs,
    ));

    let delta_hat = ref_solution.delta_hat.expect("PRR solve carries Δ̂");
    let ref_pool = ref_engine.pool().expect("reference pool");
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "    {{ \"threads\": {}, \"build_secs\": {:.4}, \
                 \"build_samples_per_sec\": {:.1}, \"build_peak_bytes\": {}, \
                 \"select_secs\": {:.4} }}",
                p.threads, p.build_secs, p.build_samples_per_sec, p.build_peak_bytes, p.select_secs,
            )
        })
        .collect();
    // The 1-thread sweep point (the full-target kernel run) is the
    // headline kernel throughput; fall back to the capped A/B measurement
    // when 1 isn't in the sweep.
    let samples_per_sec_kernel = sweep
        .iter()
        .find(|p| p.threads == 1)
        .map_or(ab_kernel_rate, |p| p.build_samples_per_sec);
    let nproc = std::thread::available_parallelism().map_or(1, |p| p.get());
    let json = format!(
        "{{\n  \"nodes\": {},\n  \"edges\": {},\n  \"num_seeds\": {},\n  \"k\": {},\n  \
         \"seed\": {},\n  \"nproc\": {},\n  \"single_core\": {},\n  \"samples\": {},\n  \
         \"boostable\": {},\n  \"arena_edges\": {},\n  \
         \"arena_bytes\": {},\n  \"delta_hat\": {:.4},\n  \
         \"samples_per_sec_kernel\": {:.1},\n  \"kernel_speedup\": {:.4},\n  \
         \"thread_sweep\": [\n{}\n  ],\n  \
         \"deadline_curve\": [\n{}\n  ]{}\n}}\n",
        g.num_nodes(),
        g.num_edges(),
        seeds.len(),
        opts.k,
        opts.seed,
        nproc,
        nproc == 1,
        ref_pool.total_samples(),
        ref_pool.num_boostable(),
        ref_pool.arena().total_edges(),
        ref_pool.memory_bytes(),
        delta_hat,
        samples_per_sec_kernel,
        kernel_speedup,
        sweep_json.join(",\n"),
        curve_json.join(",\n"),
        legacy_json,
    );
    std::fs::write(&opts.out, &json).expect("write BENCH_prr.json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);
}
