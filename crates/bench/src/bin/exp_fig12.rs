//! Figure 12: sandwich-approximation ratio µ̂/Δ̂ (random seeds, β=2).

use kboost_bench::figures::sandwich_experiment;
use kboost_bench::{Opts, SeedMode};

fn main() {
    let opts = Opts::from_args();
    println!("## Figure 12 — sandwich ratio (random seeds)");
    let ks = opts.k_grid();
    sandwich_experiment(SeedMode::Random, &[2.0], &ks, &opts);
}
