//! Table 2: compression ratio and memory usage (influential seeds).

use kboost_bench::figures::compression_experiment;
use kboost_bench::{Opts, SeedMode};

fn main() {
    let opts = Opts::from_args();
    println!("## Table 2 — compression + memory (influential seeds)\n");
    compression_experiment(SeedMode::Influential, &opts);
}
