//! Figure 8: effect of the boosting parameter β on the boost of influence
//! and the running time (influential seeds, k = 1000 in the paper).

use kboost_bench::figures::datasets;
use kboost_bench::{eval_boost, fmt_secs, load, pick_seeds, print_table, Opts, SeedMode};
use kboost_core::{prr_boost, prr_boost_lb};
use kboost_datasets::Dataset;

fn main() {
    let opts = Opts::from_args();
    let k = if opts.full { 1000 } else { 100 };
    println!("## Figure 8 — effect of the boosting parameter (k = {k})");
    for dataset in datasets(&opts) {
        let base = load(dataset, 2.0, &opts);
        println!("\n### {}", dataset.name());
        let mut rows = Vec::new();
        for beta in [2.0f64, 3.0, 4.0, 5.0, 6.0] {
            let g = if (beta - 2.0).abs() < 1e-12 {
                base.clone()
            } else {
                Dataset::reboost(&base, beta)
            };
            let seeds = pick_seeds(&g, SeedMode::Influential, &opts);
            let bopts = opts.boost_options(beta as u64);
            let (full, _) = prr_boost(&g, &seeds, k, &bopts);
            let lb = prr_boost_lb(&g, &seeds, k, &bopts);
            rows.push(vec![
                format!("{beta}"),
                format!("{:.1}", eval_boost(&g, &seeds, &full.best, &opts)),
                format!("{:.1}", eval_boost(&g, &seeds, &lb.best, &opts)),
                fmt_secs(full.stats.sampling_secs + full.stats.selection_secs),
                fmt_secs(lb.stats.sampling_secs),
            ]);
        }
        print_table(
            &[
                "beta",
                "boost(PRR-Boost)",
                "boost(LB)",
                "time(PRR-Boost)",
                "time(LB)",
            ],
            &rows,
        );
    }
}
