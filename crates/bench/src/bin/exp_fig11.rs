//! Figure 11: running time of PRR-Boost vs PRR-Boost-LB (random seeds).

use kboost_bench::figures::time_experiment;
use kboost_bench::{Opts, SeedMode};

fn main() {
    let opts = Opts::from_args();
    println!("## Figure 11 — running time (random seeds)");
    time_experiment(SeedMode::Random, &opts);
}
