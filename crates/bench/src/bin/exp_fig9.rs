//! Figure 9: sandwich ratio under larger boosting parameters β ∈ {4,5,6}.

use kboost_bench::figures::sandwich_experiment;
use kboost_bench::{Opts, SeedMode};

fn main() {
    let opts = Opts::from_args();
    println!("## Figure 9 — sandwich ratio vs boosting parameter");
    let k = if opts.full { 1000 } else { 100 };
    sandwich_experiment(SeedMode::Influential, &[4.0, 5.0, 6.0], &[k], &opts);
}
