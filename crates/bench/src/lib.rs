//! Experiment harness support for reproducing the paper's tables and
//! figures.
//!
//! Each binary in `src/bin/` regenerates one table or figure (see
//! `DESIGN.md` §5 for the index). Binaries share the setup code here:
//! dataset loading, seed selection, Monte-Carlo evaluation and table
//! printing. Criterion micro-benchmarks live in `benches/`.
//!
//! All binaries accept:
//!
//! * `--quick` (default): tiny dataset scale, capped sampling — minutes.
//! * `--medium`: 10% of paper scale.
//! * `--full`: paper-scale networks and uncapped IMM sampling — hours.
//! * `--threads N`: worker threads (default 8).
//! * `--seed N`: RNG seed (default 42).

use kboost_core::BoostOptions;
use kboost_datasets::{Dataset, Scale};
use kboost_diffusion::monte_carlo::{estimate_boost, estimate_sigma, McConfig};
use kboost_graph::{DiGraph, NodeId};
use kboost_rrset::imm::ImmParams;
use kboost_rrset::seeds::{select_random_nodes, select_seeds};

/// Parsed command-line options shared by all experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct Opts {
    /// Dataset scale.
    pub scale: Scale,
    /// Cap on IMM sketches (None in `--full`).
    pub max_sketches: Option<u64>,
    /// Monte-Carlo evaluation runs (paper: 20 000).
    pub mc_runs: u32,
    /// Worker threads.
    pub threads: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Whether `--full` was requested.
    pub full: bool,
}

impl Opts {
    /// Parses `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = Opts {
            scale: Scale::Tiny,
            max_sketches: Some(300_000),
            mc_runs: 2_000,
            threads: 8,
            seed: 42,
            full: false,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {}
                "--medium" => {
                    opts.scale = Scale::Fraction(0.1);
                    opts.max_sketches = Some(2_000_000);
                    opts.mc_runs = 10_000;
                }
                "--full" => {
                    opts.scale = Scale::Full;
                    opts.max_sketches = None;
                    opts.mc_runs = 20_000;
                    opts.full = true;
                }
                "--threads" => {
                    i += 1;
                    opts.threads = args[i].parse().expect("--threads N");
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args[i].parse().expect("--seed N");
                }
                other => panic!("unknown flag {other}"),
            }
            i += 1;
        }
        opts
    }

    /// PRR-Boost options derived from these settings.
    pub fn boost_options(&self, seed_offset: u64) -> BoostOptions {
        BoostOptions {
            epsilon: 0.5,
            ell: 1.0,
            threads: self.threads,
            seed: self.seed.wrapping_add(seed_offset),
            max_sketches: self.max_sketches,
            min_sketches: 0,
        }
    }

    /// IMM parameters for seed selection.
    pub fn imm_params(&self, k: usize, seed_offset: u64) -> ImmParams {
        ImmParams {
            k,
            epsilon: 0.5,
            ell: 1.0,
            threads: self.threads,
            seed: self.seed.wrapping_add(seed_offset),
            max_sketches: self.max_sketches,
            min_sketches: 0,
        }
    }

    /// Monte-Carlo config for evaluating solutions.
    pub fn mc(&self, seed_offset: u64) -> McConfig {
        McConfig {
            runs: self.mc_runs,
            threads: self.threads,
            seed: self.seed.wrapping_add(seed_offset),
        }
    }

    /// The `k` grid for boost-vs-k figures, scaled to the run mode.
    pub fn k_grid(&self) -> Vec<usize> {
        if self.full {
            vec![100, 500, 1000, 2000, 5000]
        } else {
            vec![20, 50, 100, 200]
        }
    }

    /// Number of random seeds (paper: 500; scaled down in quick mode).
    pub fn random_seed_count(&self, n: usize) -> usize {
        if self.full {
            500
        } else {
            (n / 40).clamp(20, 500)
        }
    }
}

/// How seeds are chosen for an experiment (Sections VII-A vs VII-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedMode {
    /// 50 influential nodes selected by IMM.
    Influential,
    /// Random nodes (paper: 500).
    Random,
}

/// Loads the dataset at the configured scale with boosting parameter β.
pub fn load(dataset: Dataset, beta: f64, opts: &Opts) -> DiGraph {
    dataset.generate(opts.scale, beta, opts.seed)
}

/// Selects seeds per the experiment's seed mode.
pub fn pick_seeds(g: &DiGraph, mode: SeedMode, opts: &Opts) -> Vec<NodeId> {
    match mode {
        SeedMode::Influential => select_seeds(g, &opts.imm_params(50, 0xA)),
        SeedMode::Random => select_random_nodes(
            g,
            opts.random_seed_count(g.num_nodes()),
            &[],
            opts.seed ^ 0xB,
        ),
    }
}

/// Monte-Carlo boost of influence of a boost set.
pub fn eval_boost(g: &DiGraph, seeds: &[NodeId], set: &[NodeId], opts: &Opts) -> f64 {
    estimate_boost(g, seeds, set, &opts.mc(0xC))
}

/// Monte-Carlo boosted influence spread.
pub fn eval_sigma(g: &DiGraph, seeds: &[NodeId], set: &[NodeId], opts: &Opts) -> f64 {
    estimate_sigma(g, seeds, set, &opts.mc(0xD))
}

/// Best-of-four HighDegreeGlobal solution (as the paper reports).
pub fn best_high_degree_global(
    g: &DiGraph,
    seeds: &[NodeId],
    k: usize,
    opts: &Opts,
) -> (f64, Vec<NodeId>) {
    best_of(
        kboost_baselines::high_degree::ALL_DEGREES
            .into_iter()
            .map(|d| kboost_baselines::high_degree_global(g, seeds, k, d))
            .collect(),
        g,
        seeds,
        opts,
    )
}

/// Best-of-four HighDegreeLocal solution.
pub fn best_high_degree_local(
    g: &DiGraph,
    seeds: &[NodeId],
    k: usize,
    opts: &Opts,
) -> (f64, Vec<NodeId>) {
    best_of(
        kboost_baselines::high_degree::ALL_DEGREES
            .into_iter()
            .map(|d| kboost_baselines::high_degree_local(g, seeds, k, d))
            .collect(),
        g,
        seeds,
        opts,
    )
}

fn best_of(
    sets: Vec<Vec<NodeId>>,
    g: &DiGraph,
    seeds: &[NodeId],
    opts: &Opts,
) -> (f64, Vec<NodeId>) {
    sets.into_iter()
        .map(|s| (eval_boost(g, seeds, &s, opts), s))
        .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .expect("at least one candidate set")
}

/// Prints an aligned table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.0}ms", s * 1e3)
    } else if s < 100.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}s", s)
    }
}

/// Formats bytes as MB.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}MB", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_grid_scales() {
        let quick = Opts {
            scale: Scale::Tiny,
            max_sketches: Some(1),
            mc_runs: 1,
            threads: 1,
            seed: 1,
            full: false,
        };
        assert!(quick.k_grid().iter().all(|&k| k <= 200));
        let full = Opts {
            full: true,
            ..quick
        };
        assert!(full.k_grid().contains(&5000));
    }

    #[test]
    fn table_printer_handles_ragged_rows() {
        print_table(
            &["a", "bb"],
            &[
                vec!["1".into(), "22".into()],
                vec!["333".into(), "4".into()],
            ],
        );
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.5), "500ms");
        assert_eq!(fmt_secs(2.0), "2.0s");
        assert_eq!(fmt_mb(1024 * 1024), "1.00MB");
    }
}

pub mod figures;
