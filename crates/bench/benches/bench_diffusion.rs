//! Micro-benchmarks of the diffusion simulators: coupled runs (common
//! random numbers) vs plain runs, and the µ-model 0-1 BFS.

use criterion::{criterion_group, criterion_main, Criterion};
use kboost_datasets::{Dataset, Scale};
use kboost_diffusion::mu_model::mu_spread_pair;
use kboost_diffusion::sim::{simulate, BoostMask, CoupledRun};
use kboost_rrset::seeds::select_random_nodes;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_simulators(c: &mut Criterion) {
    let g = Dataset::Digg.generate(Scale::Tiny, 2.0, 7);
    let seeds = select_random_nodes(&g, 20, &[], 1);
    let boost_nodes = select_random_nodes(&g, 100, &seeds, 2);
    let boost = BoostMask::from_nodes(g.num_nodes(), &boost_nodes);

    c.bench_function("ic_simulate_plain", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| black_box(simulate(&g, &seeds, &boost, &mut rng)));
    });
    c.bench_function("ic_simulate_coupled_pair", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(CoupledRun::new(i).spread_pair(&g, &seeds, &boost))
        });
    });
    c.bench_function("mu_model_spread_pair", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(mu_spread_pair(&g, &seeds, &boost, CoupledRun::new(i)))
        });
    });
}

/// Short measurement budget: these benches exist to expose relative costs
/// (generation vs compression vs evaluation), not microsecond precision.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_simulators
}
criterion_main!(benches);
