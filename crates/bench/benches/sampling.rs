//! Kernel-vs-scalar micro-benchmarks for the data-oriented sampling
//! kernels: the PRR phase-I generator ([`PrrFullSource::new`] against
//! [`scalar_oracle`](PrrFullSource::scalar_oracle)) and the cover-only
//! RR-set sampler ([`InfluenceRr::new`] against
//! [`new_scalar_oracle`](InfluenceRr::new_scalar_oracle)), per graph
//! family. Both legs of each pair draw the identical random stream and
//! produce byte-equal pools, so the ratio is pure kernel overhead/win —
//! any semantic drift would already fail the equivalence suites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kboost_datasets::{Dataset, Scale};
use kboost_prr::{PrrArenaShard, PrrFullSource};
use kboost_rrset::ic::InfluenceRr;
use kboost_rrset::seeds::select_random_nodes;
use kboost_rrset::sketch::SketchPool;
use std::hint::black_box;

const POOL_SEED: u64 = 23;
const TARGET: u64 = 512;

fn bench_prr_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("prr_sampling_512");
    for dataset in [Dataset::Digg, Dataset::Flickr] {
        let g = dataset.generate(Scale::Tiny, 2.0, 7);
        let seeds = select_random_nodes(&g, 20, &[], 3);
        let kernel = PrrFullSource::new(&g, &seeds, 100);
        let scalar = PrrFullSource::scalar_oracle(&g, &seeds, 100, kboost_prr::FootprintMode::Off);
        group.bench_function(BenchmarkId::new("kernel", dataset.name()), |b| {
            b.iter(|| {
                let mut pool: SketchPool<PrrArenaShard> = SketchPool::new(POOL_SEED, 1);
                pool.extend_to(&kernel, TARGET);
                black_box(pool.covers().len())
            });
        });
        group.bench_function(BenchmarkId::new("scalar_oracle", dataset.name()), |b| {
            b.iter(|| {
                let mut pool: SketchPool<PrrArenaShard> = SketchPool::new(POOL_SEED, 1);
                pool.extend_to(&scalar, TARGET);
                black_box(pool.covers().len())
            });
        });
    }
    group.finish();
}

fn bench_rrset_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("rrset_sampling_4k");
    for dataset in [Dataset::Digg, Dataset::Flickr] {
        let g = dataset.generate(Scale::Tiny, 2.0, 7);
        let kernel = InfluenceRr::new(&g);
        let scalar = InfluenceRr::new_scalar_oracle(&g);
        group.bench_function(BenchmarkId::new("kernel", dataset.name()), |b| {
            b.iter(|| {
                let mut pool: SketchPool<()> = SketchPool::new(POOL_SEED, 1);
                pool.extend_to(&kernel, 4_096);
                black_box(pool.covers().len())
            });
        });
        group.bench_function(BenchmarkId::new("scalar_oracle", dataset.name()), |b| {
            b.iter(|| {
                let mut pool: SketchPool<()> = SketchPool::new(POOL_SEED, 1);
                pool.extend_to(&scalar, 4_096);
                black_box(pool.covers().len())
            });
        });
    }
    group.finish();
}

/// Short measurement budget: these benches exist to expose the
/// kernel-vs-scalar ratio, not microsecond precision.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_prr_kernel, bench_rrset_kernel
}
criterion_main!(benches);
