//! Micro-benchmarks of the bidirected-tree algorithms: the O(n) exact
//! computation (Lemmas 5-7), Greedy-Boost, and DP-Boost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kboost_graph::generators::complete_binary_tree;
use kboost_graph::probability::ProbabilityModel;
use kboost_rrset::seeds::select_random_nodes;
use kboost_tree::exact::TreeState;
use kboost_tree::{dp_boost, greedy_boost, BidirectedTree};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn make_tree(n: usize) -> BidirectedTree {
    let mut rng = SmallRng::seed_from_u64(9);
    let topo = complete_binary_tree(n);
    let g = topo.into_bidirected_graph(ProbabilityModel::Trivalency, 2.0, &mut rng);
    let seeds = select_random_nodes(&g, (n / 20).max(2), &[], 1);
    BidirectedTree::from_digraph(&g, &seeds).unwrap()
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_exact_sigma");
    for n in [1_000usize, 10_000, 100_000] {
        let tree = make_tree(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(TreeState::compute(&tree, &[]).sigma()));
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let tree = make_tree(2_000);
    c.bench_function("tree_greedy_boost_n2000_k20", |b| {
        b.iter(|| black_box(greedy_boost(&tree, 20).boost));
    });
}

fn bench_dp(c: &mut Criterion) {
    let tree = make_tree(200);
    c.bench_function("tree_dp_boost_n200_k10_eps1", |b| {
        b.iter(|| black_box(dp_boost(&tree, 10, 1.0).boost));
    });
}

/// Short measurement budget: these benches exist to expose relative costs
/// (generation vs compression vs evaluation), not microsecond precision.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_exact, bench_greedy, bench_dp
}
criterion_main!(benches);
