//! Micro-benchmarks of the PRR-graph machinery: phase-I generation,
//! compression (ablation: full pipeline vs critical-only fast path), and
//! f_R evaluation — the inner loops behind Figures 6/11 and Tables 2/3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kboost_datasets::{Dataset, Scale};
use kboost_diffusion::sim::BoostMask;
use kboost_prr::{
    greedy_delta_selection, greedy_delta_selection_naive, PrrArena, PrrEvalScratch, PrrGenerator,
    PrrOutcome,
};
use kboost_rrset::seeds::select_random_nodes;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("prr_generation");
    for dataset in [Dataset::Digg, Dataset::Flickr] {
        let g = dataset.generate(Scale::Tiny, 2.0, 7);
        let seeds = select_random_nodes(&g, 20, &[], 3);
        let generator = PrrGenerator::new(&g, &seeds, 100);
        group.bench_function(BenchmarkId::new("full", dataset.name()), |b| {
            let mut rng = SmallRng::seed_from_u64(11);
            b.iter(|| {
                black_box(matches!(
                    generator.sample(&mut rng),
                    PrrOutcome::Boostable(_)
                ))
            });
        });
        group.bench_function(BenchmarkId::new("critical_only", dataset.name()), |b| {
            let mut rng = SmallRng::seed_from_u64(11);
            b.iter(|| black_box(generator.sample_critical_only(&mut rng).len()));
        });
        // Ablation: disable the distance-k pruning (Section V-A notes the
        // pruning mostly matters for small k).
        let no_prune = PrrGenerator::new(&g, &seeds, 1_000_000_000);
        group.bench_function(BenchmarkId::new("full_no_pruning", dataset.name()), |b| {
            let mut rng = SmallRng::seed_from_u64(11);
            b.iter(|| {
                black_box(matches!(
                    no_prune.sample(&mut rng),
                    PrrOutcome::Boostable(_)
                ))
            });
        });
        // Ablation: small-k pruning (k = 1), where pruning bites hardest.
        let tight = PrrGenerator::new(&g, &seeds, 1);
        group.bench_function(BenchmarkId::new("full_k1_pruned", dataset.name()), |b| {
            let mut rng = SmallRng::seed_from_u64(11);
            b.iter(|| black_box(matches!(tight.sample(&mut rng), PrrOutcome::Boostable(_))));
        });
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let g = Dataset::Digg.generate(Scale::Tiny, 2.0, 7);
    let seeds = select_random_nodes(&g, 20, &[], 3);
    let generator = PrrGenerator::new(&g, &seeds, 100);
    let mut rng = SmallRng::seed_from_u64(13);
    // Collect a handful of boostable graphs.
    let mut graphs = Vec::new();
    while graphs.len() < 100 {
        if let PrrOutcome::Boostable(p) = generator.sample(&mut rng) {
            graphs.push(p);
        }
    }
    let boost = BoostMask::from_nodes(g.num_nodes(), &select_random_nodes(&g, 50, &seeds, 5));
    let mut scratch = PrrEvalScratch::default();
    c.bench_function("prr_f_eval_100_graphs", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for p in &graphs {
                hits += p.f(&boost, &mut scratch) as u32;
            }
            black_box(hits)
        });
    });
    let mut out = Vec::new();
    c.bench_function("prr_augmented_critical_100_graphs", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &graphs {
                out.clear();
                let _ = p.augmented_critical(&boost, &mut scratch, &mut out);
                total += out.len();
            }
            black_box(total)
        });
    });
}

/// Greedy `Δ̂` selection: inverted coverage index vs the naive per-round
/// full re-traversal, on the same arena (single-threaded so the comparison
/// isolates the algorithmic change).
fn bench_selection(c: &mut Criterion) {
    let g = Dataset::Digg.generate(Scale::Tiny, 2.0, 7);
    let seeds = select_random_nodes(&g, 20, &[], 3);
    let k = 20usize;
    let generator = PrrGenerator::new(&g, &seeds, k);
    let mut rng = SmallRng::seed_from_u64(17);
    let mut arena = PrrArena::new();
    while arena.len() < 4_000 {
        if let PrrOutcome::Boostable(p) = generator.sample(&mut rng) {
            arena.push(&p);
        }
    }
    let mut group = c.benchmark_group("prr_selection_4k_graphs_k20");
    group.bench_function("indexed", |b| {
        b.iter(|| black_box(greedy_delta_selection(&arena, g.num_nodes(), k, 1).covered));
    });
    group.bench_function("naive_retraversal", |b| {
        b.iter(|| black_box(greedy_delta_selection_naive(&arena, g.num_nodes(), k).covered));
    });
    group.finish();
}

/// Short measurement budget: these benches exist to expose relative costs
/// (generation vs compression vs evaluation), not microsecond precision.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_generation, bench_evaluation, bench_selection
}
criterion_main!(benches);
