//! Micro-benchmarks of the RR-set / IMM substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use kboost_datasets::{Dataset, Scale};
use kboost_rrset::greedy::greedy_max_cover;
use kboost_rrset::ic::{sample_rr_set, RrScratch};
use kboost_rrset::seeds::select_random_nodes;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_rr_generation(c: &mut Criterion) {
    for dataset in [Dataset::Digg, Dataset::Twitter] {
        let g = dataset.generate(Scale::Tiny, 2.0, 7);
        c.bench_function(&format!("rr_set_{}", dataset.name()), |b| {
            let mut rng = SmallRng::seed_from_u64(3);
            let mut scratch = RrScratch::default();
            b.iter(|| black_box(sample_rr_set(&g, &mut rng, &mut scratch).len()));
        });
    }
}

fn bench_greedy_cover(c: &mut Criterion) {
    let g = Dataset::Digg.generate(Scale::Tiny, 2.0, 7);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut scratch = RrScratch::default();
    let covers: Vec<_> = (0..20_000)
        .map(|_| sample_rr_set(&g, &mut rng, &mut scratch))
        .collect();
    let _ = select_random_nodes(&g, 1, &[], 0); // warm node-count path
    c.bench_function("greedy_cover_20k_sketches_k50", |b| {
        b.iter(|| black_box(greedy_max_cover(&covers, g.num_nodes(), 50, None).covered));
    });
}

/// Short measurement budget: these benches exist to expose relative costs
/// (generation vs compression vs evaluation), not microsecond precision.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

fn bench_imm_vs_ssa(c: &mut Criterion) {
    // Ablation: IMM's worst-case sample bound vs the SSA stop-and-stare
    // rule, measured end-to-end on seed selection.
    use kboost_rrset::ic::InfluenceRr;
    use kboost_rrset::imm::{run_imm, ImmParams};
    use kboost_rrset::ssa::{run_ssa, SsaParams};
    let g = Dataset::Digg.generate(Scale::Tiny, 2.0, 7);
    let src = InfluenceRr::new(&g);
    c.bench_function("sampler_imm_k10", |b| {
        b.iter(|| {
            let params = ImmParams {
                k: 10,
                epsilon: 0.5,
                ell: 1.0,
                threads: 4,
                seed: 5,
                max_sketches: Some(100_000),
                min_sketches: 0,
            };
            black_box(run_imm(&src, &params).pool.total_samples())
        });
    });
    c.bench_function("sampler_ssa_k10", |b| {
        b.iter(|| {
            let params = SsaParams {
                k: 10,
                epsilon: 0.5,
                initial: 1_000,
                max_sketches: 100_000,
                threads: 4,
                seed: 5,
            };
            black_box(run_ssa(&src, &params).pool.total_samples())
        });
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_rr_generation, bench_greedy_cover, bench_imm_vs_ssa
}
criterion_main!(benches);
