//! Minimal, self-contained stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access, so this shim provides the
//! subset of the criterion API the workspace's benches use: `Criterion`
//! with `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up for the configured warm-up
//! time, then runs timed batches until the measurement time elapses and
//! reports the mean wall-clock time per iteration. No statistics beyond
//! the mean are computed — the workspace uses benches to expose *relative*
//! costs, not microsecond-precise distributions.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` also works.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.warm_up, self.measurement, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.warm_up,
            self.criterion.measurement,
            f,
        );
        self
    }

    /// Runs one benchmark with an input value threaded to the closure.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &P),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the various id forms accepted by `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    /// Mean nanoseconds per iteration, filled by [`iter`](Self::iter).
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std_black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size batches so each sample takes ~measurement/samples seconds.
        let sample_budget = self.measurement.as_secs_f64() / self.samples as f64;
        let batch = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / iters as f64;
        self.iters = iters;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        warm_up,
        measurement,
        samples,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    let (value, unit) = humanize(b.mean_ns);
    println!(
        "{name:<60} time: {value:>9.3} {unit}/iter  ({} iters)",
        b.iters
    );
}

fn humanize(ns: f64) -> (f64, &'static str) {
    if ns < 1e3 {
        (ns, "ns")
    } else if ns < 1e6 {
        (ns / 1e3, "µs")
    } else if ns < 1e9 {
        (ns / 1e6, "ms")
    } else {
        (ns / 1e9, "s")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
        let mut group = c.benchmark_group("grp");
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| 2 * 2));
        group.finish();
    }

    #[test]
    fn humanize_units() {
        assert_eq!(humanize(10.0).1, "ns");
        assert_eq!(humanize(10_000.0).1, "µs");
        assert_eq!(humanize(10_000_000.0).1, "ms");
        assert_eq!(humanize(10_000_000_000.0).1, "s");
    }
}
