//! Minimal, self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this shim implements the
//! subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `name in strategy` argument bindings,
//! * [`Strategy`] for numeric ranges, tuples, [`Strategy::prop_map`], and
//!   [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//!   [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest: inputs are sampled from a deterministic
//! per-test RNG rather than exhaustively explored, and failing cases are
//! *not* shrunk — the panic message reports the case number instead, and
//! the whole run is reproducible because seeding depends only on the test
//! name and case index.

use rand::rngs::SmallRng;
use rand::Rng;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*` macros inside a proptest body.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Result type of a proptest body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of some type.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut SmallRng) -> f32 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Constant-value strategy, mirroring proptest's `Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for vectors with element strategy `S` and length in a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Vector of values drawn from `elem`, with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic per-test RNG derivation.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// RNG for case `case` of the test named `name`: depends on nothing
    /// else, so failures reproduce across runs and machines.
    pub fn rng_for(name: &str, case: u32) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        SmallRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// Samples a strategy once — used internally by the [`proptest!`] macro.
pub fn sample_strategy<S: Strategy>(strategy: &S, rng: &mut SmallRng) -> S::Value {
    strategy.sample(rng)
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(args) {}`
/// items whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )+ ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::rng_for(stringify!($name), __case);
                    $( let $arg = $crate::sample_strategy(&($strategy), &mut __rng); )+
                    #[allow(unreachable_code)]
                    let __result: $crate::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), __case, e);
                    }
                }
            }
        )+
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}", l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in 1usize..4, f in 0.25f64..0.75) {
            prop_assert!(x < 10);
            prop_assert!((1..4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..5, 0u32..5)) {
            let (a, b) = pair;
            prop_assert!(a < 5 && b < 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!(v.len() < 6);
            for x in &v {
                prop_assert!(*x < 4);
            }
        }
    }

    #[test]
    fn vec_strategy_lengths_vary() {
        let strat = crate::collection::vec(0u8..4, 0..6);
        let mut lens = std::collections::HashSet::new();
        for case in 0..64 {
            let mut rng = crate::test_runner::rng_for("vec_strategy_lengths_vary", case);
            lens.insert(crate::Strategy::sample(&strat, &mut rng).len());
        }
        assert!(lens.len() > 2, "lengths never varied: {lens:?}");
    }
}
