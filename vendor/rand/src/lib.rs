//! Minimal, self-contained stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace ships this shim instead of the real crate. It implements
//! exactly the surface the workspace uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64,
//! * [`Rng`] — `random`, `random_range`, `random_bool`,
//! * [`SeedableRng`] — `seed_from_u64`,
//! * [`seq::IndexedRandom::choose`] and [`seq::SliceRandom::shuffle`].
//!
//! Determinism contract: for a fixed seed, every method produces an
//! identical stream on every platform — several workspace tests (parallel
//! sketch pools, coupled Monte-Carlo) rely on this.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (top half of a 64-bit draw).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with consecutive 64-bit draws, identical to calling
    /// [`next_u64`](Self::next_u64) `dest.len()` times. Batch refills let
    /// hot sampling loops amortise per-draw call overhead without changing
    /// the stream.
    #[inline]
    fn fill_u64(&mut self, dest: &mut [u64]) {
        for slot in dest.iter_mut() {
            *slot = self.next_u64();
        }
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform over
    /// the value range; `[0, 1)` for floats).
    #[inline]
    fn random<T: distr::StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    #[inline]
    fn random_range<T, R: distr::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand a `u64` seed into RNG state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distr {
    //! Distribution plumbing behind [`Rng::random`] and
    //! [`Rng::random_range`].

    use super::RngCore;

    /// Maps 64 random bits to a uniform `f64` in `[0, 1)` (top 53 bits).
    #[inline]
    pub fn unit_f64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Types samplable by [`Rng::random`](super::Rng::random).
    pub trait StandardUniform: Sized {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardUniform for f64 {
        #[inline]
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64())
        }
    }

    impl StandardUniform for f32 {
        #[inline]
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl StandardUniform for u64 {
        #[inline]
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardUniform for u32 {
        #[inline]
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl StandardUniform for bool {
        #[inline]
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform draw from `[0, span)` via 128-bit widening multiply.
    ///
    /// The modulo bias is at most `span / 2^64` — far below anything the
    /// workspace's statistical tolerances could detect.
    #[inline]
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Ranges samplable by [`Rng::random_range`](super::Rng::random_range),
    /// producing values of type `T`. The generic parameter (rather than an
    /// associated type) lets integer-literal ranges infer their type from
    /// how the result is used, e.g. as a slice index.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(below(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(below(rng, span + 1) as $t)
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        #[inline]
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range");
            let x = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
            // Floating rounding can land exactly on `end`; clamp back.
            if x >= self.end {
                self.end - (self.end - self.start) * f64::EPSILON
            } else {
                x
            }
        }
    }

    impl SampleRange<f32> for core::ops::Range<f32> {
        #[inline]
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "empty range");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            let x = self.start + (self.end - self.start) * unit;
            if x >= self.end {
                self.start
            } else {
                x
            }
        }
    }
}

pub mod seq {
    //! Random selection / permutation over slices.

    use super::{Rng, RngCore};

    /// Random element access on slices.
    pub trait IndexedRandom {
        /// Element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(3..7u32);
            assert!((3..7).contains(&v));
            seen[v as usize] = true;
            let w = rng.random_range(0..=2usize);
            assert!(w <= 2);
            let f = rng.random_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
        assert!(seen[3] && seen[4] && seen[5] && seen[6]);
    }

    #[test]
    fn fill_u64_matches_sequential_draws() {
        let mut a = SmallRng::seed_from_u64(21);
        let mut b = SmallRng::seed_from_u64(21);
        let mut buf = [0u64; 37];
        a.fill_u64(&mut buf);
        for (i, &w) in buf.iter().enumerate() {
            assert_eq!(w, b.next_u64(), "draw {i} diverged");
        }
        // The two rngs must also be in the same state afterwards.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn random_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(13);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
