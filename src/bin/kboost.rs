//! `kboost` — command-line interface to the k-boosting toolkit.
//!
//! ```text
//! kboost stats    <graph>                                  graph statistics
//! kboost generate --dataset digg [--scale tiny] -o <graph> synthetic network
//! kboost seeds    <graph> -k 50 -o seeds.txt               IMM seed selection
//! kboost boost    <graph> --seeds seeds.txt -k 100 [--lb] [--ssa] -o boost.txt
//! kboost simulate <graph> --seeds seeds.txt [--boost boost.txt] [--runs 20000]
//! kboost tree     <graph> --seeds seeds.txt -k 20 [--dp --eps 0.5]
//! ```
//!
//! Graphs use the edge-list format of `kboost::graph::io`
//! (`n m` header, then `u v p p'` lines). Node-set files hold one node id
//! per line.

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

use kboost::datasets::{Dataset, Scale};
use kboost::diffusion::monte_carlo::{estimate_boost, estimate_sigma, McConfig};
use kboost::engine::{Algorithm, EngineBuilder, Sampling};
use kboost::graph::io::{read_edge_list_file, write_edge_list_file};
use kboost::graph::stats::graph_stats;
use kboost::graph::{DiGraph, NodeId};
use kboost::rrset::imm::ImmParams;
use kboost::rrset::seeds::select_seeds;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  kboost stats    <graph>
  kboost generate --dataset <digg|flixster|twitter|flickr> [--scale <tiny|full|FRACTION>] [--beta B] -o <graph>
  kboost seeds    <graph> -k K [-o seeds.txt]
  kboost boost    <graph> --seeds seeds.txt -k K [--lb] [--eps E] [--threads T] [-o boost.txt]
  kboost simulate <graph> --seeds seeds.txt [--boost boost.txt] [--runs N]
  kboost tree     <graph> --seeds seeds.txt -k K [--dp --eps E]";

type CliResult = Result<(), String>;

fn run(args: &[String]) -> CliResult {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "stats" => cmd_stats(rest),
        "generate" => cmd_generate(rest),
        "seeds" => cmd_seeds(rest),
        "boost" => cmd_boost(rest),
        "simulate" => cmd_simulate(rest),
        "tree" => cmd_tree(rest),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Minimal flag parser: positionals plus `--flag [value]` pairs.
struct Flags {
    positional: Vec<String>,
    named: HashMap<String, String>,
}

const BOOL_FLAGS: [&str; 3] = ["--lb", "--dp", "--ssa"];

fn parse_flags(args: &[String]) -> Flags {
    let mut positional = Vec::new();
    let mut named = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(stripped) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&a.as_str()) {
                named.insert(stripped.to_string(), "true".to_string());
            } else {
                i += 1;
                let value = args.get(i).cloned().unwrap_or_default();
                named.insert(stripped.to_string(), value);
            }
        } else if let Some(stripped) = a.strip_prefix('-') {
            i += 1;
            let value = args.get(i).cloned().unwrap_or_default();
            named.insert(stripped.to_string(), value);
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Flags { positional, named }
}

impl Flags {
    fn graph(&self) -> Result<DiGraph, String> {
        let path = self.positional.first().ok_or("missing <graph> argument")?;
        read_edge_list_file(path).map_err(|e| format!("cannot read {path}: {e}"))
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.named.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("bad value for --{key}: {raw}")),
        }
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.named
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{key}"))
    }

    fn has(&self, key: &str) -> bool {
        self.named.contains_key(key)
    }
}

fn read_node_file(path: &str) -> Result<Vec<NodeId>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            l.parse::<u32>()
                .map(NodeId)
                .map_err(|_| format!("bad node id `{l}` in {path}"))
        })
        .collect()
}

fn write_node_file(path: &str, nodes: &[NodeId]) -> CliResult {
    let mut text = String::new();
    for v in nodes {
        text.push_str(&format!("{v}\n"));
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

fn cmd_stats(args: &[String]) -> CliResult {
    let flags = parse_flags(args);
    let g = flags.graph()?;
    let s = graph_stats(&g);
    println!("nodes:            {}", s.nodes);
    println!("edges:            {}", s.edges);
    println!("avg p:            {:.4}", s.avg_probability);
    println!("avg p':           {:.4}", s.avg_boosted_probability);
    println!("max out-degree:   {}", s.max_out_degree);
    println!("max in-degree:    {}", s.max_in_degree);
    Ok(())
}

fn cmd_generate(args: &[String]) -> CliResult {
    let flags = parse_flags(args);
    let name = flags.required("dataset")?;
    let dataset = match name.to_lowercase().as_str() {
        "digg" => Dataset::Digg,
        "flixster" => Dataset::Flixster,
        "twitter" => Dataset::Twitter,
        "flickr" => Dataset::Flickr,
        other => return Err(format!("unknown dataset `{other}`")),
    };
    let scale = match flags.named.get("scale").map(String::as_str) {
        None | Some("tiny") => Scale::Tiny,
        Some("full") => Scale::Full,
        Some(frac) => Scale::Fraction(
            frac.parse()
                .map_err(|_| format!("bad --scale value `{frac}`"))?,
        ),
    };
    let beta: f64 = flags.parse("beta", 2.0)?;
    let seed: u64 = flags.parse("seed", 42)?;
    let out = flags.required("o")?;
    let g = dataset.generate(scale, beta, seed);
    write_edge_list_file(&g, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} edges)",
        out,
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_seeds(args: &[String]) -> CliResult {
    let flags = parse_flags(args);
    let g = flags.graph()?;
    let k: usize = flags.parse("k", 50)?;
    let params = ImmParams {
        k,
        epsilon: flags.parse("eps", 0.5)?,
        ell: 1.0,
        threads: flags.parse("threads", 8)?,
        seed: flags.parse("seed", 42)?,
        max_sketches: Some(flags.parse("max-sketches", 5_000_000u64)?),
        min_sketches: 0,
    };
    let seeds = select_seeds(&g, &params);
    match flags.named.get("o") {
        Some(path) => {
            write_node_file(path, &seeds)?;
            println!("wrote {} seeds to {path}", seeds.len());
        }
        None => {
            for s in &seeds {
                println!("{s}");
            }
        }
    }
    Ok(())
}

fn cmd_boost(args: &[String]) -> CliResult {
    let flags = parse_flags(args);
    let g = flags.graph()?;
    let seeds = read_node_file(flags.required("seeds")?)?;
    let k: usize = flags.parse("k", 100)?;
    // Config mistakes (bad seed ids, k over the non-seed population, ...)
    // surface here as one typed KboostError instead of a panic inside a
    // sampler.
    let mut builder = EngineBuilder::new(g)
        .seeds(seeds)
        .k(k)
        .epsilon(flags.parse("eps", 0.5)?)
        .threads(flags.parse("threads", 8)?)
        .seed(flags.parse("seed", 42)?)
        .max_sketches(flags.parse("max-sketches", 5_000_000u64)?);
    if flags.has("ssa") {
        builder = builder.sampling(Sampling::Ssa { initial: 2_000 });
    }
    let mut engine = builder.build().map_err(|e| e.to_string())?;
    let algorithm = if flags.has("lb") {
        Algorithm::PrrBoostLb
    } else {
        Algorithm::Sandwich
    };
    let solution = engine.solve(&algorithm).map_err(|e| e.to_string())?;
    let estimate = solution.delta_hat.or(solution.mu_hat).unwrap_or(0.0);
    eprintln!(
        "estimated boost: {:.2} ({} PRR-graphs sampled, {:.1}s sampling)",
        estimate, solution.stats.total_samples, solution.stats.build_secs
    );
    match flags.named.get("o") {
        Some(path) => {
            write_node_file(path, &solution.boost_set)?;
            println!("wrote {} boost nodes to {path}", solution.boost_set.len());
        }
        None => {
            for v in &solution.boost_set {
                println!("{v}");
            }
        }
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> CliResult {
    let flags = parse_flags(args);
    let g = flags.graph()?;
    let seeds = read_node_file(flags.required("seeds")?)?;
    let boost = match flags.named.get("boost") {
        Some(path) => read_node_file(path)?,
        None => Vec::new(),
    };
    let mc = McConfig {
        runs: flags.parse("runs", 20_000u32)?,
        threads: flags.parse("threads", 8)?,
        seed: flags.parse("seed", 42)?,
    };
    let sigma = estimate_sigma(&g, &seeds, &boost, &mc);
    println!("sigma: {sigma:.3}");
    if !boost.is_empty() {
        let delta = estimate_boost(&g, &seeds, &boost, &mc);
        println!("boost: {delta:.3}");
    }
    Ok(())
}

fn cmd_tree(args: &[String]) -> CliResult {
    let flags = parse_flags(args);
    let g = flags.graph()?;
    let seeds = read_node_file(flags.required("seeds")?)?;
    let k: usize = flags.parse("k", 20)?;
    let mut engine = EngineBuilder::new(g)
        .seeds(seeds)
        .k(k)
        .build()
        .map_err(|e| e.to_string())?;
    let dp_epsilon = if flags.has("dp") {
        Some(flags.parse("eps", 0.5)?)
    } else {
        None
    };
    let solution = engine
        .solve(&Algorithm::TreeExact { dp_epsilon })
        .map_err(|e| e.to_string())?;
    match dp_epsilon {
        Some(eps) => println!(
            "DP-Boost(ε={eps}): boost = {:.4}",
            solution.delta_hat.unwrap_or(0.0)
        ),
        None => println!(
            "Greedy-Boost: boost = {:.4}",
            solution.delta_hat.unwrap_or(0.0)
        ),
    }
    for v in &solution.boost_set {
        println!("{v}");
    }
    Ok(())
}
