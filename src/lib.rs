//! `kboost` — a reproduction of *"Boosting Information Spread: An
//! Algorithmic Approach"* (Lin, Chen, Lui; ICDE 2017 / arXiv:1602.03111).
//!
//! # Start here: the engine
//!
//! [`engine`] is the single typed entry point over the whole workspace:
//! an [`engine::EngineBuilder`] validates graph, seed set, budget `k`,
//! sampling parameters (ε/ℓ or the failure probability δ), RNG seed and
//! thread count into an [`engine::Engine`]; every solver — PRR-Boost,
//! PRR-Boost-LB, the Sandwich Approximation, the exact tree algorithms
//! and all Section-VII baselines — runs through the one
//! [`engine::BoostAlgorithm`] interface and returns a uniform
//! [`engine::Solution`] (boost set, `Δ̂`/`µ̂`, sandwich certificate,
//! timing and peak-memory stats). The same handle owns the online
//! lifecycle: [`engine::Engine::apply_mutations`] drives the incremental
//! pool maintainer, so one object serves queries while the graph
//! evolves. Configuration mistakes surface as typed
//! [`engine::KboostError`]s at build time, not panics inside a sampler.
//!
//! # Quickstart
//!
//! Figure 1 of the paper (`s → v0 → v1`), end to end through the engine:
//! with one boost available, boosting `v0` (node 1) beats `v1` — gains
//! compound down the path.
//!
//! ```
//! use kboost::engine::{Algorithm, EngineBuilder, Sampling};
//! use kboost::graph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
//! b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
//! let g = b.build().unwrap();
//!
//! let mut engine = EngineBuilder::new(g)
//!     .seeds([NodeId(0)])
//!     .k(1)
//!     .threads(2)
//!     .seed(21)
//!     .sampling(Sampling::Fixed { samples: 30_000 })
//!     .build()
//!     .expect("validated configuration");
//!
//! let solution = engine.solve(&Algorithm::Sandwich).expect("solvable");
//! assert_eq!(solution.boost_set, vec![NodeId(1)]);
//! // Δ̂ approximates the exact Δ_S({v0}) = 0.22 of the paper.
//! let delta_hat = solution.delta_hat.unwrap();
//! assert!((delta_hat - 0.22).abs() < 0.05, "Δ̂ = {delta_hat}");
//! // The sandwich certificate records both branches and the µ̂/Δ̂ ratio.
//! let cert = solution.certificate.unwrap();
//! assert!(cert.ratio > 0.0 && cert.ratio <= 1.05);
//! ```
//!
//! # Module map
//!
//! * [`engine`] — the unified `EngineBuilder` / `Engine` /
//!   `BoostAlgorithm` API above: **new code should enter here**.
//! * [`graph`] — directed-graph substrate (CSR with base/boosted edge
//!   probabilities), generators, IO, statistics.
//! * [`diffusion`] — the Independent Cascade and influence-boosting
//!   simulators, an exact exhaustive evaluator for small graphs, and a
//!   parallel Monte-Carlo estimator.
//! * [`rrset`] — Reverse-Reachable sets and the IMM sampling framework.
//! * [`prr`] — Potentially Reverse Reachable graphs: generation
//!   (Algorithm 1), compression, evaluation, critical nodes, the flat
//!   storage arena, and the index-accelerated greedy `Δ̂` selection.
//! * [`core`] — PRR-Boost, PRR-Boost-LB, the Sandwich Approximation, and
//!   the budget-allocation heuristic.
//! * [`online`] — incremental PRR-pool maintenance for evolving graphs:
//!   mutation logs, epoch refresh, tombstone compaction.
//! * [`serve`] — concurrent query serving: epoch-pinned immutable pool
//!   snapshots published by pointer swap, and the batched
//!   `evaluate_many` query surface.
//! * [`obs`] — vendored zero-dependency observability: counters,
//!   gauges, log-bucketed histograms, span timers and a JSONL event
//!   sink behind one `Recorder` trait (see **Observability** below).
//! * [`tree`] — bidirected-tree algorithms: linear-time exact boosted
//!   influence (Lemmas 5–7), Greedy-Boost, and the DP-Boost FPTAS.
//! * [`baselines`] — HighDegreeGlobal/Local, PageRank, MoreSeeds, Random.
//! * [`datasets`] — synthetic stand-ins for the paper's four social
//!   networks, calibrated to Table 1.
//!
//! The deep module paths stay re-exported on purpose: the pre-engine
//! tests and benches wire `SketchPool → PrrPool → greedy` by hand and
//! thereby double as the equivalence oracle — selections through the
//! engine are bit-identical to the hand-wired pipeline under the
//! determinism contract (`tests/engine_api.rs` asserts it at 1 and 7
//! threads).
//!
//! # The parallel PRR engine underneath
//!
//! The hot path — PRR-graph sampling and greedy boost selection — is
//! multi-threaded end to end, under one **determinism contract**: results
//! depend only on the seed and the requested sample targets, never on the
//! thread count or the OS scheduler.
//!
//! * **Sampling** ([`rrset::sketch::SketchPool`]): work is cut into
//!   fixed-size chunks seeded from `(base_seed, global_chunk_index)`;
//!   workers pull chunks from a shared counter and results merge in chunk
//!   order. Per-thread generation scratch (the stamped distance array of
//!   Algorithm 1) is reused across samples via thread-locals.
//! * **Storage** ([`prr::arena::PrrArena`]): boostable PRR-graphs are
//!   flattened into shared arrays — node tables, CSR offsets, packed
//!   edges (head + boost flag in one `u32`), critical sets — built
//!   **during sampling**: each worker chunk appends Phase-II output
//!   straight into a [`prr::arena::PrrArenaShard`], and chunk shards
//!   merge into the pool arena by bulk append with offset rebasing.
//! * **Selection** ([`prr::select::greedy_delta_selection`]): an inverted
//!   coverage index maps each node to the PRR-graphs where it heads a
//!   boost edge; greedy rounds update vote counts incrementally.
//!   Bit-identical to the naive full re-traversal
//!   ([`prr::select::greedy_delta_selection_naive`]), which property
//!   tests enforce; `BENCH_prr.json` tracks the measured speedup.
//! * **Estimation** (`core::PrrPool`): `Δ̂` / `µ̂` fan out over contiguous
//!   arena ranges and sum exact per-range counts, skipping tombstoned
//!   graphs.
//!
//! # The data-oriented sampling kernel
//!
//! Phase-I generation — the four-orders-of-magnitude hot path — runs
//! through a data-oriented kernel (`prr::gen`, shared in style with the
//! RR-set sampler in `rrset::ic`), with the original readable loop
//! retained as a **scalar oracle** that the kernel must match
//! byte-for-byte (`tests/sampler_kernel.rs` proves it across graph
//! families, thread counts, footprint modes, and interruption points):
//!
//! * **SoA mirror lifecycle**: [`graph::DiGraph::in_edge_soa`] builds a
//!   struct-of-arrays mirror of the in-edge CSR — narrow `u32` head and
//!   offset lanes for prefetch lookahead, paired `(base, boosted)`
//!   probabilities so one cache line serves both comparisons of a draw.
//!   Sources build it **once per generator**, and every pool build or
//!   online mutation epoch constructs a fresh generator
//!   (`online::maintain` rebuilds sources per epoch), which is what
//!   keeps the mirror coherent with the evolving graph — there is no
//!   incremental mirror update to get wrong.
//! * **Batched-draw stream-order invariant**: the kernel bulk-fills a
//!   uniform buffer via `fill_u64` (first refill small, doubling to the
//!   batch cap) and consumes one uniform per touched edge *in the scalar
//!   loop's exact draw order*. Before each refill it snapshots the RNG;
//!   on any exit — early activation, end of sample — it rewinds to the
//!   snapshot and replays exactly the consumed draws. The RNG therefore
//!   leaves every sample in the scalar oracle's state, which is what
//!   lets kernel and scalar pools share the chunk-seeding determinism
//!   contract (and lets the two implementations interleave freely,
//!   sample by sample).
//! * **Scratch reuse rules**: all per-sample state — the epoch-stamped
//!   per-node `{stamp, dist, local-id}` table, BFS deque, edge/seed
//!   lists, uniform buffer, compression core arrays, critical-set
//!   extraction flags — lives in thread-local scratch, valid for one
//!   sample (stamp == round) and reused across samples without
//!   clearing. Steady-state sampling performs no heap allocation and no
//!   hashing; phase I emits *sample-local* node ids directly (its
//!   first-touch order provably equals compression's first-appearance
//!   order), so phase II skips its global→local relabeling pass, and
//!   `critical_from_scratch` replaces the oracle's hash-map passes with
//!   stamped arrays.
//!
//! `benches/sampling.rs` tracks the kernel-vs-scalar ratio per graph
//! family; `BENCH_prr.json` records `samples_per_sec_kernel` and
//! `kernel_speedup` at the standard 60k-node scale, where the walk is
//! cache-miss-bound and the kernel's prefetch lookahead pays. On tiny
//! cache-resident graphs the batching is roughly cost-neutral (the
//! vendored RNG fills sequentially) — the kernel's floor is parity, its
//! ceiling is the miss-bound regime.
//!
//! # Online maintenance
//!
//! Sampling dominates the pipeline (minutes) while selection is
//! milliseconds, so a service over a *changing* network must not rebuild
//! the pool per change. The [`online`] subsystem — driven through
//! [`engine::Engine::apply_mutations`] — keeps a pool live under edge
//! mutations:
//!
//! * **Mutation epochs** ([`online::mutation::MutationLog`]): probability
//!   updates, insertions and removals batch into numbered epochs; epoch 0
//!   is the initial build.
//! * **Epoch seeding** ([`rrset::sketch::epoch_stream_seed`]): refresh
//!   chunks of epoch `e` are seeded from `(base_seed, e, chunk_index)` —
//!   the determinism contract extends to mutation histories, so a
//!   maintained pool is bit-identical for any thread count.
//! * **Staleness rules** ([`online::maintain::Staleness`], selected via
//!   [`engine::EngineBuilder::staleness`]): `Approximate` (default)
//!   marks a stored sample stale iff a mutated edge's endpoint appears
//!   in its node table — zero memory overhead, but samples whose
//!   phase-I footprint was compressed away, and empty samples, are
//!   never refreshed (documented under-detection). `Exact` retains each
//!   sample's *edge-space footprint* ([`prr::footprint`]) — the sorted
//!   set of nodes whose in-edge lists the sampler enumerated — for
//!   stored **and** empty samples, so a mutation of edge `(u, v)`
//!   invalidates exactly the samples whose generation queried `v`'s
//!   in-edge slot. Three tiers trade footprint memory against verdict
//!   precision: `ExactCompressed` interns delta-varint footprints
//!   (exact verdicts, strictly below sorted bytes at scale);
//!   `ExactBloom { bits }` stores fixed-width bloom fingerprints
//!   (never misses, may over-refresh); `ExactHybrid { bloom_above }`
//!   keeps small footprints compressed and fingerprints only the heavy
//!   tail. `ExactTrace` additionally retains phase-I coin outcomes and
//!   **replays** invalidated samples — reusing coins on unmutated
//!   in-edge slots, redrawing only mutated ones — so the maintained
//!   pool is distribution-identical to a fresh pool over the mutated
//!   graph. The memory trade is footprint bytes vs exactness
//!   ([`engine::SolveStats::footprint_bytes`], `BENCH_online.json`'s
//!   `footprint_overhead`).
//! * **Tombstone lifecycle** ([`prr::arena::PrrArena`]): stale samples,
//!   found via **incrementally maintained** invalidation indices
//!   (refreshes append entries, queries filter dead samples, only
//!   compaction rebuilds), are tombstoned in place — stored graphs in
//!   the arena, empty samples in the footprint column — and exactly
//!   that share is resampled, keeping the estimator denominator
//!   constant. Compaction is canonicalizing, so the maintained arena
//!   (footprint columns included) stays byte-equal to a from-scratch
//!   replay under the same rule
//!   ([`online::maintain::rebuild_from_history`], the equivalence
//!   oracle; `tests/online_pool.rs` asserts it property-wise, the
//!   exact mode's recorded drift is zero by construction, and
//!   `exp_online` tracks speedup, drift and footprint overhead in
//!   `BENCH_online.json`). Under the redraw-mode rules refreshed slots
//!   are unconditioned fresh draws (see the `kboost-online` crate docs
//!   for the conditioning caveat that implies); `ExactTrace`'s
//!   conditional replay closes it.
//!
//! # Serving & snapshot rotation
//!
//! One `&mut Engine` serializes every read behind every mutation epoch;
//! a service with real traffic cannot. [`engine::Engine::serving`]
//! decouples the two clocks through [`serve`]: the maintainer publishes
//! an immutable [`serve::PoolSnapshot`] — epoch stamp, graph, seeds,
//! pool, all by value — after **every committed epoch**, through a
//! vendored double-buffer pointer swap ([`serve::SnapSwap`]; `arc-swap`
//! is unavailable offline). Query threads clone the
//! [`serve::SnapshotService`] handle and answer `Δ̂`/`µ̂`/
//! `evaluate_many` on pinned snapshots, lock-free, while the next epoch
//! samples and commits off to the side.
//!
//! The contract, enforced by `tests/serve.rs` and `exp_service`:
//!
//! * **Epoch pinning**: [`serve::SnapshotService::pin`] returns an
//!   `Arc` of the latest *committed* epoch. Every query through one pin
//!   is answered by one frozen pool — byte-identical to a pinned oracle
//!   of that epoch for the pin's whole lifetime, no matter how many
//!   epochs commit concurrently. Readers wanting the head re-pin per
//!   query (an atomic load plus an `Arc` clone).
//! * **Publish ordering**: there is one publisher (the maintainer), so
//!   published epochs are strictly increasing, and the swap's
//!   release/acquire ordering means a reader that observes epoch
//!   `e + 1` observes it fully built — no torn reads. A rolled-back
//!   epoch publishes nothing: readers keep seeing the pre-epoch
//!   snapshot, which is exactly the state the maintainer rolled back
//!   to.
//! * **Epoch retirement**: a snapshot is retired when its last pin
//!   drops — reclamation is `Arc`, not the publisher's concern. The
//!   publisher never waits on readers of the *current* epoch; it waits
//!   only for stragglers still cloning out of the slot being recycled
//!   (a window of one `Arc` clone).
//! * **Batched evaluation**: `PoolSnapshot::evaluate_many` scores
//!   hundreds of candidate boost sets in one arena traversal (per-node
//!   candidate bitsets; traversal only for candidates holding one of a
//!   graph's boost-edge heads) and is **bit-for-bit** equal to the
//!   per-set `Engine::evaluate` loop, which is retained as the
//!   equivalence oracle.
//!
//! `BENCH_service.json` records sustained queries/sec under mutation
//! churn, snapshot-publish latency, and epoch-lag percentiles — all
//! read back from the obs histograms the lifecycle itself feeds.
//!
//! # Observability
//!
//! [`obs`] is a vendored, zero-dependency metrics layer (no `metrics`
//! or `tracing` crates offline): one [`obs::Recorder`] trait behind an
//! [`obs::Obs`] handle, with lock-cheap counters and gauges,
//! fixed-bucket log-scaled histograms with nearest-rank percentile
//! readout, RAII span timers for nested stage timing, and a bounded
//! structured-event sink exportable as JSON lines. Attach a sink with
//! [`engine::EngineBuilder::recorder`] and read it back with
//! [`engine::Engine::metrics`]; four hot lifecycles feed it:
//!
//! * **solve** — `engine.solve.{build,convert,select,total}_secs`
//!   stage histograms, `engine.budget_tick` events at sampling stage
//!   boundaries, and the honest `engine.achieved_epsilon` gauge;
//! * **sampler** — per chunk: `sampler.chunk_secs`,
//!   `sampler.chunk_samples_per_sec`, and the
//!   `sampler.{chunks,samples,rng_refills}` counters (a refill is one
//!   per-chunk RNG reseed from the deterministic schedule);
//! * **online epochs** — `online.{epochs,invalidated,resampled,
//!   compactions,rollbacks}` counters, `online.epoch.{apply,refresh}_secs`
//!   spans, `online.epoch_commit` / `online.rollback` (with cause)
//!   events;
//! * **serving** — the `serve.publish_secs` latency histogram (snapshot
//!   clone + pointer swap), the `serve.epoch_lag` histogram fed by
//!   [`serve::SnapshotService::record_query`], the `serve.live_pins`
//!   gauge, and `serve.{pins,publishes,queries}` counters.
//!
//! The contract, enforced by `tests/obs.rs`:
//!
//! * **Zero perturbation**: instrumentation reads clocks and bumps
//!   atomics — it **never consumes randomness**. A full lifecycle
//!   (build, solve, mutation epochs, serving) under an attached
//!   [`obs::MetricsRecorder`] is **byte-identical** to the no-op run,
//!   at any thread count (property-tested at 1 and 7 threads over
//!   random churn histories, arenas compared bitwise).
//! * **Zero cost detached**: without a recorder each instrumentation
//!   point is one predicted-not-taken branch on an `Option` — no clock
//!   reads, no allocation, nothing per *sample* ever (hot loops record
//!   per chunk or per stage only).
//! * **Honest percentiles**: histogram readout is nearest-rank — exact
//!   over the retained raw reservoir, bucket-lower-bound (≤ 12.5 % low)
//!   beyond it — and every summary carries its sample count, because a
//!   p90 over 4 publishes *is* the max and the JSON should say so.
//!
//! # Latency contract & transactional epochs
//!
//! A serving deployment needs two guarantees the batch pipeline above
//! does not give by itself: an answer **by a deadline**, and epochs that
//! **cannot poison** the pool. Both live behind the engine:
//!
//! * **Bounded solves** ([`engine::Engine::solve_within`]): a
//!   composable [`engine::Budget`] — wall-clock deadline, sample cap,
//!   cooperative [`engine::CancelFlag`], optional progress observer
//!   ([`engine::SolveProgress`]: samples so far, running `Δ̂`,
//!   certificate width, and — at stage boundaries — the **current-best
//!   boost set** of a greedy pass over the samples so far, a streaming
//!   improving solution) — is polled at every chunk boundary of the pool
//!   build. Sampling stops cooperatively, selection runs on the partial
//!   pool (always a valid chunk prefix), and the solution reports the
//!   accuracy those samples honestly certify
//!   ([`engine::SolveStats::achieved_epsilon`], by inverting the IMM
//!   sample bound) plus an
//!   [`interrupted`](engine::SolveStats::interrupted) flag.
//!   `solve_within` under [`engine::Budget::unlimited`] is
//!   **bit-identical** to [`engine::Engine::solve`]; a pure sample cap
//!   stops at a deterministic chunk, so even partial pools are
//!   thread-count invariant. `BENCH_prr.json`'s `deadline_curve` tracks
//!   what ε each budget buys.
//! * **Transactional epochs**: mutation batches are validated at
//!   ingress (out-of-universe endpoint, self-loop →
//!   [`engine::KboostError::Mutation`], never a panic, nothing
//!   applied), and an epoch refresh that is cancelled, misses its
//!   budget, or panics rolls the pool back to its **byte-identical**
//!   pre-epoch state ([`engine::KboostError::Interrupted`]) — the same
//!   batch retries verbatim and converges to exactly what an
//!   uninterrupted apply would have produced. `tests/online_pool.rs`
//!   proves it by fault injection: cancellations and panics at random
//!   chunk boundaries over random mutation histories, with arena
//!   byte-equality and retry convergence to the replay oracle.

pub use kboost_baselines as baselines;
pub use kboost_core as core;
pub use kboost_datasets as datasets;
pub use kboost_diffusion as diffusion;
pub use kboost_engine as engine;
pub use kboost_graph as graph;
pub use kboost_obs as obs;
pub use kboost_online as online;
pub use kboost_prr as prr;
pub use kboost_rrset as rrset;
pub use kboost_serve as serve;
pub use kboost_tree as tree;
