//! The serving subsystem's snapshot contract, end to end:
//!
//! * **concurrent snapshot stress** — readers pinned to epoch `e` see a
//!   **byte-identical** arena (and identical answers) while epoch
//!   `e + 1` samples and commits underneath them: no torn reads, no
//!   in-place mutation of published state, monotone published epochs;
//! * **batched ≡ per-set** — `evaluate_many` matches the per-set
//!   `delta_hat` / `mu_hat` oracle bit-for-bit on random candidate
//!   batches over ER, preferential-attachment and set-cover-gadget
//!   pools (property test, batches wide enough to cross the 64-bit
//!   membership-word boundary);
//! * **thread invariance** — answers served from the head snapshot are
//!   bit-identical whether the maintainer ran with 1 worker or 7;
//! * **publish ordering** — a rejected epoch publishes nothing: the
//!   service keeps serving the last committed epoch unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use kboost::core::{EvalManyScratch, PrrPool};
use kboost::graph::generators::{
    erdos_renyi, preferential_attachment, set_cover_gadget, SetCoverInstance,
};
use kboost::graph::probability::{boost_probability, ProbabilityModel};
use kboost::graph::{DiGraph, EdgeProbs, NodeId};
use kboost::online::{EpochBatch, MaintainerOptions, MutationLog, PoolMaintainer};
use kboost::prr::PrrFullSource;
use kboost::rrset::sketch::SketchPool;
use kboost::serve::PoolSnapshot;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn er_graph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi(n, m, ProbabilityModel::Constant(0.3), 2.0, &mut rng)
}

/// Deterministic per-epoch churn: probability re-draws on random
/// existing edges — enough to invalidate samples every epoch.
fn churn_history(g: &DiGraph, epochs: usize, seed: u64) -> Vec<EpochBatch> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    let mut log = MutationLog::new();
    (0..epochs)
        .map(|_| {
            for _ in 0..10 {
                let (u, v) = edges[rng.random_range(0..edges.len())];
                let p: f64 = rng.random_range(0.01..0.4);
                log.set_probs(u, v, EdgeProbs::new(p, boost_probability(p, 2.0)).unwrap());
            }
            log.seal_epoch()
        })
        .collect()
}

/// Random candidate batch over `n` nodes, `count` sets wide.
fn probe_batch(n: u32, count: usize, seed: u64) -> Vec<Vec<NodeId>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            (0..(i % 7))
                .map(|_| NodeId(rng.random_range(0..n)))
                .collect()
        })
        .collect()
}

fn opts(threads: usize) -> MaintainerOptions {
    MaintainerOptions {
        target_samples: 8_000,
        k: 5,
        threads,
        base_seed: 0x5EE7,
        compact_threshold: 0.25,
        ..MaintainerOptions::default()
    }
}

/// Readers pinned to epoch `e` keep seeing the byte-identical arena and
/// identical answers while later epochs sample, commit and publish
/// underneath them. The oracle per epoch is the maintainer's own
/// by-value snapshot taken at commit time; every snapshot a reader
/// pinned concurrently must match it byte-for-byte.
#[test]
fn pinned_readers_see_byte_identical_arenas_across_commits() {
    let g = er_graph(150, 700, 11);
    let seeds = [NodeId(0), NodeId(1), NodeId(2)];
    let history = churn_history(&g, 3, 0xC0FFEE);
    // 69 candidates: crosses the 64-bit membership-word boundary.
    let candidates = probe_batch(g.num_nodes() as u32, 69, 0xFACADE);

    let mut m = PoolMaintainer::build(g.clone(), seeds.to_vec(), opts(2)).unwrap();
    let service = m.serving();
    let mut oracles: HashMap<u64, PoolSnapshot> = HashMap::new();
    oracles.insert(0, m.snapshot());

    let pin0 = service.pin();
    assert_eq!(pin0.epoch(), 0);
    let pin0_answers = pin0.evaluate_many(&candidates);

    let stop = AtomicBool::new(false);
    let observed: Mutex<HashMap<u64, Arc<PoolSnapshot>>> = Mutex::new(HashMap::new());
    std::thread::scope(|s| {
        for _ in 0..4 {
            let service = service.clone();
            let (stop, observed, candidates) = (&stop, &observed, &candidates);
            s.spawn(move || {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = service.pin();
                    // Published epochs are monotone per reader.
                    assert!(snap.epoch() >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch();
                    // No torn reads: the pinned pool is a complete,
                    // self-consistent epoch — two evaluations of the
                    // same pin answer identically.
                    let batch = snap.evaluate_many(candidates);
                    assert_eq!(snap.evaluate_many(candidates), batch);
                    observed.lock().unwrap().entry(snap.epoch()).or_insert(snap);
                }
            });
        }

        // The maintainer commits epochs while the readers above keep
        // pinning; each commit's oracle is frozen on this thread.
        for batch in &history {
            let report = m.apply_epoch(batch).unwrap();
            assert_eq!(report.epoch, batch.epoch);
            oracles.insert(batch.epoch, m.snapshot());
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Every snapshot any reader pinned — including those captured while
    // the next epoch was mid-commit — is byte-identical to the oracle
    // frozen at that epoch's commit.
    let observed = observed.into_inner().unwrap();
    assert!(
        observed.contains_key(&0),
        "readers never saw the initial epoch"
    );
    for (epoch, snap) in &observed {
        let oracle = &oracles[epoch];
        assert_eq!(snap.epoch(), oracle.epoch());
        assert!(
            snap.pool().arena() == oracle.pool().arena(),
            "pinned epoch-{epoch} arena diverged from its commit-time oracle"
        );
        assert_eq!(
            snap.evaluate_many(&candidates),
            oracle.evaluate_many(&candidates)
        );
    }

    // The epoch-0 pin held across every commit still answers
    // byte-identically, and the head pin reflects the final epoch.
    assert_eq!(pin0.evaluate_many(&candidates), pin0_answers);
    assert!(pin0.pool().arena() == oracles[&0].pool().arena());
    let head = service.pin();
    assert_eq!(head.epoch(), history.len() as u64);
    assert!(head.pool().arena() == m.pool().arena());
}

/// Answers served from the head snapshot are bit-identical whether the
/// maintainer sampled and refreshed with 1 worker thread or 7.
#[test]
fn served_answers_bit_identical_1_vs_7_threads() {
    let g = er_graph(120, 600, 23);
    let seeds = [NodeId(4), NodeId(9)];
    let history = churn_history(&g, 3, 0xBEEF);
    let candidates = probe_batch(g.num_nodes() as u32, 70, 0x5EED);

    let serve_with = |threads: usize| {
        let mut m = PoolMaintainer::build(g.clone(), seeds.to_vec(), opts(threads)).unwrap();
        let service = m.serving();
        for batch in &history {
            m.apply_epoch(batch).unwrap();
        }
        let head = service.pin();
        assert_eq!(head.epoch(), history.len() as u64);
        let stats = service.stats();
        assert_eq!(stats.publishes, history.len() as u64);
        assert_eq!(stats.epoch, history.len() as u64);
        head.evaluate_many(&candidates)
    };
    let single = serve_with(1);
    let many = serve_with(7);
    assert_eq!(
        single, many,
        "served answers must be bit-identical across maintainer thread counts"
    );
}

/// A rejected epoch publishes nothing: the service keeps serving the
/// last committed epoch, byte-identically.
#[test]
fn rejected_epoch_publishes_nothing() {
    let g = er_graph(80, 300, 31);
    let seeds = [NodeId(0)];
    let mut m = PoolMaintainer::build(g.clone(), seeds.to_vec(), opts(2)).unwrap();
    let service = m.serving();

    let good = churn_history(&g, 1, 0xABBA);
    m.apply_epoch(&good[0]).unwrap();
    assert_eq!(service.stats().publishes, 1);
    let before = service.pin();

    // A non-contiguous epoch number is rejected at ingress — before any
    // sampling, so nothing may be published.
    let mut log = MutationLog::new();
    log.set_probs(NodeId(0), NodeId(1), EdgeProbs::new(0.1, 0.2).unwrap());
    let mut bad = log.seal_epoch();
    bad.epoch = m.epoch() + 7;
    assert!(m.apply_epoch(&bad).is_err());

    assert_eq!(service.stats().publishes, 1);
    let after = service.pin();
    assert_eq!(after.epoch(), before.epoch());
    assert!(after.pool().arena() == before.pool().arena());
}

/// Pools the batched-evaluation property test runs against: ER,
/// preferential attachment, and the set-cover gadget — built once.
fn property_pools() -> &'static Vec<(String, u32, PrrPool)> {
    static POOLS: std::sync::OnceLock<Vec<(String, u32, PrrPool)>> = std::sync::OnceLock::new();
    POOLS.get_or_init(|| {
        let build = |g: &DiGraph, seeds: &[NodeId]| {
            let source = PrrFullSource::new(g, seeds, 4);
            let mut sketches = SketchPool::new(0xDE7, 2);
            sketches.extend_to(&source, 6_000);
            PrrPool::new(sketches, g.num_nodes(), 2)
        };
        let er = er_graph(120, 600, 5);
        let mut rng = SmallRng::seed_from_u64(17);
        let pa =
            preferential_attachment(150, 3, 0.15, ProbabilityModel::Constant(0.2), 2.0, &mut rng);
        let gadget = set_cover_gadget(&SetCoverInstance {
            num_elements: 6,
            subsets: vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![0, 5],
                vec![1, 4],
            ],
        });
        let gadget_n = gadget.num_nodes() as u32;
        vec![
            ("er".to_string(), 120, build(&er, &[NodeId(0), NodeId(1)])),
            ("pa".to_string(), 150, build(&pa, &[NodeId(0), NodeId(3)])),
            ("gadget".to_string(), gadget_n, build(&gadget, &[NodeId(0)])),
        ]
    })
}

thread_local! {
    /// Shared across property cases so the workspace is exercised dirty:
    /// whatever the previous case (and pool shape) left behind must not
    /// leak into the next evaluation.
    static SCRATCH: std::cell::RefCell<EvalManyScratch> =
        std::cell::RefCell::new(EvalManyScratch::default());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `evaluate_many` ≡ the per-set `delta_hat` / `mu_hat` oracle,
    /// bit-for-bit, on random candidate batches over every pool shape.
    /// Batch widths up to 70 cross the membership-word boundary; sets
    /// may be empty, duplicated, or contain repeated nodes.
    #[test]
    fn evaluate_many_matches_per_set_oracle(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u32..120, 0..6), 0..70),
    ) {
        for (name, n, pool) in property_pools() {
            let candidates: Vec<Vec<NodeId>> = raw
                .iter()
                .map(|set| set.iter().map(|&v| NodeId(v % n)).collect())
                .collect();
            let batched = pool.evaluate_many(&candidates);
            prop_assert_eq!(batched.len(), candidates.len());
            // The caller-owned-workspace path is byte-identical to the
            // allocating path, including when the scratch is reused dirty
            // across pools of different shapes and sizes.
            let scratch = SCRATCH.with(|s| {
                let mut scratch = s.borrow_mut();
                let first = pool.evaluate_many_with(&candidates, &mut scratch);
                let second = pool.evaluate_many_with(&candidates, &mut scratch);
                (first, second)
            });
            prop_assert_eq!(&scratch.0, &batched, "{} pool: scratch path diverged", name);
            prop_assert_eq!(&scratch.1, &batched, "{} pool: dirty-scratch rerun diverged", name);
            for (c, &(delta, mu)) in candidates.iter().zip(&batched) {
                let d_oracle = pool.delta_hat(c);
                let m_oracle = pool.mu_hat(c);
                prop_assert!(
                    delta == d_oracle && mu == m_oracle,
                    "{} pool: batched ({}, {}) != per-set ({}, {})",
                    name, delta, mu, d_oracle, m_oracle
                );
            }
        }
    }
}
