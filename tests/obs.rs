//! The observability layer's zero-perturbation contract: attaching a
//! recording sink must not change a single byte of what the engine
//! computes.
//!
//! Instrumentation reads clocks and bumps atomics — it never consumes
//! randomness — so a full lifecycle (pool build, solve, mutation
//! epochs, serving) under an attached [`MetricsRecorder`] is
//! **bit-identical** to the same lifecycle with the default no-op
//! recorder, at any thread count. The property test replays random
//! churn histories through both and compares selections, estimates,
//! epoch reports and the final arenas bitwise, at 1 and 7 maintainer
//! threads; it also asserts the recorder genuinely saw the lifecycle
//! (non-zero solve/sampler/epoch/publish metrics), so the equality is
//! not vacuous.

use std::sync::Arc;

use kboost::engine::{
    Algorithm, EdgeProbs, Engine, EngineBuilder, EpochBatch, EpochReport, MetricsRecorder,
    MutationLog, NodeId, Recorder, Sampling,
};
use kboost::graph::generators::erdos_renyi;
use kboost::graph::probability::{boost_probability, ProbabilityModel};
use kboost::graph::DiGraph;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 120;
const SAMPLES: u64 = 5_000;

fn graph(seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi(NODES, 600, ProbabilityModel::Constant(0.25), 2.0, &mut rng)
}

/// Deterministic churn: per epoch, probability re-draws on random
/// existing edges.
fn history(g: &DiGraph, epochs: usize, churn: usize, seed: u64) -> Vec<EpochBatch> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges: Vec<_> = g.edges().collect();
    let mut log = MutationLog::new();
    (0..epochs)
        .map(|_| {
            for _ in 0..churn {
                let (u, v, _) = edges[rng.random_range(0..edges.len())];
                let p: f64 = rng.random_range(0.02..0.3);
                log.set_probs(u, v, EdgeProbs::new(p, boost_probability(p, 2.0)).unwrap());
            }
            log.seal_epoch()
        })
        .collect()
}

fn build_engine(g: &DiGraph, threads: usize, recorder: Option<Arc<MetricsRecorder>>) -> Engine {
    let mut builder = EngineBuilder::new(g.clone())
        .seeds([NodeId(0), NodeId(1), NodeId(2)])
        .k(4)
        .threads(threads)
        .seed(0xB0057)
        .sampling(Sampling::Fixed { samples: SAMPLES });
    if let Some(recorder) = recorder {
        builder = builder.recorder(recorder);
    }
    builder.build().expect("valid engine configuration")
}

/// Everything the lifecycle computed, captured bitwise.
struct Lifecycle {
    boost_set: Vec<NodeId>,
    delta_bits: u64,
    mu_bits: u64,
    reports: Vec<EpochReport>,
    final_answers: Vec<(f64, f64)>,
    engine: Engine,
}

/// One full lifecycle: build + solve, attach serving, apply the whole
/// history, score a probe batch on the final pool.
fn run_lifecycle(
    g: &DiGraph,
    batches: &[EpochBatch],
    threads: usize,
    recorder: Option<Arc<MetricsRecorder>>,
) -> Lifecycle {
    let mut engine = build_engine(g, threads, recorder);
    let solution = engine.solve(&Algorithm::Sandwich).expect("solve");
    let _service = engine.serving().expect("online mode");
    let reports: Vec<EpochReport> = batches
        .iter()
        .map(|b| engine.apply_mutations(b).expect("contiguous epoch"))
        .collect();
    let probes: Vec<Vec<NodeId>> = (0..NODES as u32)
        .step_by(7)
        .map(|v| vec![NodeId(v), NodeId((v + 13) % NODES as u32)])
        .collect();
    let final_answers = engine.evaluate_many(&probes).expect("pool built");
    Lifecycle {
        boost_set: solution.boost_set,
        delta_bits: solution.delta_hat.unwrap().to_bits(),
        mu_bits: solution.mu_hat.unwrap().to_bits(),
        reports,
        final_answers,
        engine,
    }
}

fn assert_identical(recorded: &Lifecycle, noop: &Lifecycle, threads: usize) {
    assert_eq!(
        recorded.boost_set, noop.boost_set,
        "selection changed under recording at {threads} threads"
    );
    assert_eq!(recorded.delta_bits, noop.delta_bits);
    assert_eq!(recorded.mu_bits, noop.mu_bits);
    assert_eq!(recorded.reports.len(), noop.reports.len());
    for (r, o) in recorded.reports.iter().zip(&noop.reports) {
        assert_eq!(
            (r.invalidated, r.drawn_stored, r.drawn_empty, r.compacted),
            (o.invalidated, o.drawn_stored, o.drawn_empty, o.compacted),
            "epoch {} report changed under recording at {threads} threads",
            r.epoch
        );
    }
    assert_eq!(
        recorded.final_answers, noop.final_answers,
        "final-pool answers changed under recording at {threads} threads"
    );
}

/// The arenas themselves — not just answers derived from them — are
/// byte-equal with and without a recorder attached.
fn assert_arenas_equal(a: &mut Lifecycle, b: &mut Lifecycle, threads: usize) {
    let snap_a = a.engine.snapshot().expect("online mode");
    let snap_b = b.engine.snapshot().expect("online mode");
    assert!(
        snap_a.pool().arena() == snap_b.pool().arena(),
        "arena bytes changed under recording at {threads} threads"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Solve + mutation history with a recording sink attached is
    /// byte-identical to the no-op run, at 1 and 7 threads — and the
    /// 1-thread and 7-thread recorded runs agree with each other (the
    /// determinism contract holds *through* the instrumentation).
    #[test]
    fn recorded_lifecycle_is_byte_identical_to_noop(
        graph_seed in 0u64..1_000,
        churn_seed in 0u64..1_000,
        epochs in 1usize..4,
        churn in 5usize..30,
    ) {
        let g = graph(graph_seed);
        let batches = history(&g, epochs, churn, churn_seed);

        let mut runs = Vec::new();
        for threads in [1usize, 7] {
            let recorder = Arc::new(MetricsRecorder::new());
            let mut recorded =
                run_lifecycle(&g, &batches, threads, Some(recorder.clone()));
            let mut noop = run_lifecycle(&g, &batches, threads, None);
            assert_identical(&recorded, &noop, threads);
            assert_arenas_equal(&mut recorded, &mut noop, threads);

            // Not vacuous: the recorder really watched the lifecycle.
            let metrics = recorder.snapshot();
            prop_assert_eq!(metrics.counter("engine.solves"), Some(1));
            prop_assert!(metrics.counter("sampler.chunks").unwrap_or(0) >= 1);
            prop_assert_eq!(metrics.counter("online.epochs"), Some(epochs as u64));
            prop_assert!(metrics
                .histogram("serve.publish_secs")
                .is_some_and(|h| h.count == epochs as u64));
            // The no-op side recorded nothing at all.
            prop_assert!(noop.engine.metrics().counters.is_empty());

            runs.push(recorded);
        }
        let (mut one, mut seven) = {
            let mut it = runs.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        assert_identical(&one, &seven, 7);
        assert_arenas_equal(&mut one, &mut seven, 7);
    }
}
