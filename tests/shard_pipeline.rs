//! The streaming shard→arena pipeline's equivalence and determinism
//! contracts, end to end:
//!
//! * a shard-built `PrrArena` is **byte-equal** to the legacy arena
//!   copy-built from per-graph `CompressedPrr` payloads sampled with the
//!   same seed (`PrrArena` equality compares the raw storage arrays), on
//!   ER graphs and on the set-cover gadget of the NP-hardness proof;
//! * the `Δ̂` / `µ̂` estimators agree exactly between the two pools;
//! * the shard path is **thread-count invariant**: 1 worker and 7 workers
//!   produce the bit-identical arena.

use kboost::core::PrrPool;
use kboost::graph::generators::{erdos_renyi, set_cover_gadget, SetCoverInstance};
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::{DiGraph, NodeId};
use kboost::prr::{LegacyPrrSource, PrrFullSource};
use kboost::rrset::sketch::SketchPool;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn er_graph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi(n, m, ProbabilityModel::Constant(0.3), 2.0, &mut rng)
}

fn gadget() -> DiGraph {
    set_cover_gadget(&SetCoverInstance {
        num_elements: 6,
        subsets: vec![
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4, 5],
            vec![0, 5],
            vec![1, 4],
        ],
    })
}

/// Builds the same pool twice — through the shard pipeline and through the
/// legacy per-graph copy path — and asserts byte-equality plus estimator
/// agreement.
fn assert_shard_matches_legacy(
    g: &DiGraph,
    seeds: &[NodeId],
    k: usize,
    pool_seed: u64,
    threads: usize,
    target: u64,
) {
    let shard_source = PrrFullSource::new(g, seeds, k);
    let mut shard_sketches = SketchPool::new(pool_seed, threads);
    shard_sketches.extend_to(&shard_source, target);
    let shard_pool = PrrPool::new(shard_sketches, g.num_nodes(), threads);

    let legacy_source = LegacyPrrSource::new(g, seeds, k);
    let mut legacy_sketches = SketchPool::new(pool_seed, threads);
    legacy_sketches.extend_to(&legacy_source, target);
    let legacy_pool = PrrPool::from_legacy(legacy_sketches, g.num_nodes(), threads);

    assert_eq!(shard_pool.total_samples(), legacy_pool.total_samples());
    assert_eq!(shard_pool.empty_samples(), legacy_pool.empty_samples());
    assert!(
        shard_pool.arena() == legacy_pool.arena(),
        "shard-built arena diverged from the legacy copy-built arena \
         (seed {pool_seed}, k {k}, {threads} threads)"
    );
    for set in [
        vec![NodeId(1)],
        vec![NodeId(2), NodeId(3)],
        (0..g.num_nodes() as u32).map(NodeId).take(4).collect(),
    ] {
        assert_eq!(shard_pool.delta_hat(&set), legacy_pool.delta_hat(&set));
        assert_eq!(shard_pool.mu_hat(&set), legacy_pool.mu_hat(&set));
    }
}

#[test]
fn shard_path_thread_invariant_arena_bytes() {
    let g = er_graph(100, 500, 3);
    let seeds = [NodeId(0), NodeId(1)];
    let source = PrrFullSource::new(&g, &seeds, 3);

    let mut reference = SketchPool::new(0xA11CE, 1);
    // Two extensions: chunk indexing must survive incremental growth.
    reference.extend_to(&source, 9_000);
    reference.extend_to(&source, 25_000);
    let reference = PrrPool::new(reference, g.num_nodes(), 1);
    assert!(reference.num_boostable() > 0, "degenerate test pool");

    for threads in [2usize, 7] {
        let mut sketches = SketchPool::new(0xA11CE, threads);
        sketches.extend_to(&source, 9_000);
        sketches.extend_to(&source, 25_000);
        let pool = PrrPool::new(sketches, g.num_nodes(), threads);
        assert_eq!(pool.total_samples(), reference.total_samples());
        assert!(
            pool.arena() == reference.arena(),
            "arena bytes differ at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shard pipeline ≡ legacy copy pipeline on random ER pools, across
    /// budgets and thread counts.
    #[test]
    fn shard_matches_legacy_on_er(
        graph_seed in 0u64..5_000,
        pool_seed in 0u64..5_000,
        k in 1usize..5,
        threads in 1usize..5,
    ) {
        let g = er_graph(14, 40, graph_seed);
        assert_shard_matches_legacy(&g, &[NodeId(0)], k, pool_seed, threads, 600);
    }

    /// Same equivalence on the set-cover gadget, whose PRR-graphs have the
    /// tripartite structure of the NP-hardness proof (deep graphs with
    /// large critical sets).
    #[test]
    fn shard_matches_legacy_on_gadget(
        pool_seed in 0u64..5_000,
        k in 1usize..4,
        threads in 1usize..4,
    ) {
        let g = gadget();
        assert_shard_matches_legacy(&g, &[NodeId(0)], k, pool_seed, threads, 800);
    }
}
