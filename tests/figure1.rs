//! Figure 1 of the paper, checked through every evaluation path in the
//! workspace: exact enumeration, coupled Monte-Carlo, PRR-graph pools,
//! the µ-model simulator, and PRR-Boost itself.

use kboost::core::{prr_boost, prr_boost_lb, BoostOptions};
use kboost::diffusion::exact::{exact_boost, exact_sigma};
use kboost::diffusion::monte_carlo::{estimate_boost, estimate_sigma, McConfig};
use kboost::diffusion::mu_model::estimate_mu;
use kboost::graph::{DiGraph, GraphBuilder, NodeId};

fn figure1() -> DiGraph {
    let mut b = GraphBuilder::new(3);
    b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
    b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
    b.build().unwrap()
}

const S: [NodeId; 1] = [NodeId(0)];

#[test]
fn exact_numbers_match_paper_table() {
    let g = figure1();
    assert!((exact_sigma(&g, &S, &[]) - 1.22).abs() < 1e-12);
    assert!((exact_sigma(&g, &S, &[NodeId(1)]) - 1.44).abs() < 1e-12);
    assert!((exact_sigma(&g, &S, &[NodeId(2)]) - 1.24).abs() < 1e-12);
    assert!((exact_sigma(&g, &S, &[NodeId(1), NodeId(2)]) - 1.48).abs() < 1e-12);
}

#[test]
fn monte_carlo_agrees_with_exact() {
    let g = figure1();
    let mc = McConfig {
        runs: 200_000,
        threads: 4,
        seed: 5,
    };
    for set in [
        vec![],
        vec![NodeId(1)],
        vec![NodeId(2)],
        vec![NodeId(1), NodeId(2)],
    ] {
        let sim = estimate_sigma(&g, &S, &set, &mc);
        let truth = exact_sigma(&g, &S, &set);
        assert!((sim - truth).abs() < 0.01, "B={set:?}: {sim} vs {truth}");
        let simd = estimate_boost(&g, &S, &set, &mc);
        let truthd = exact_boost(&g, &S, &set);
        assert!(
            (simd - truthd).abs() < 0.005,
            "Δ B={set:?}: {simd} vs {truthd}"
        );
    }
}

#[test]
fn mu_is_a_lower_bound_of_delta() {
    let g = figure1();
    for set in [vec![NodeId(1)], vec![NodeId(2)], vec![NodeId(1), NodeId(2)]] {
        let mu = estimate_mu(&g, &S, &set, 200_000, 11);
        let delta = exact_boost(&g, &S, &set);
        assert!(
            mu <= delta + 0.01,
            "µ {mu} must lower-bound Δ {delta} for {set:?}"
        );
    }
}

#[test]
fn prr_boost_picks_v0_and_pool_estimates_match() {
    let g = figure1();
    let opts = BoostOptions {
        threads: 2,
        seed: 21,
        min_sketches: 150_000,
        max_sketches: Some(300_000),
        ..Default::default()
    };
    let (out, pool) = prr_boost(&g, &S, 1, &opts);
    assert_eq!(
        out.best,
        vec![NodeId(1)],
        "boosting v0 dominates boosting v1"
    );

    // Pool estimators vs exact values.
    for set in [vec![NodeId(1)], vec![NodeId(2)], vec![NodeId(1), NodeId(2)]] {
        let est = pool.delta_hat(&set);
        let truth = exact_boost(&g, &S, &set);
        assert!((est - truth).abs() < 0.02, "Δ̂({set:?}) = {est} vs {truth}");
        let mu_hat = pool.mu_hat(&set);
        let mu_sim = estimate_mu(&g, &S, &set, 200_000, 31);
        assert!(
            (mu_hat - mu_sim).abs() < 0.02,
            "µ̂({set:?}) = {mu_hat} vs {mu_sim}"
        );
        assert!(mu_hat <= est + 0.01, "µ̂ must lower-bound Δ̂");
    }
}

#[test]
fn lb_variant_agrees_with_full_variant() {
    let g = figure1();
    let opts = BoostOptions {
        threads: 2,
        seed: 23,
        min_sketches: 100_000,
        max_sketches: Some(200_000),
        ..Default::default()
    };
    let full = prr_boost(&g, &S, 1, &opts).0;
    let lb = prr_boost_lb(&g, &S, 1, &opts);
    assert_eq!(full.best, lb.best);
}

#[test]
fn boosting_beats_seeding_comparison_from_section_iii() {
    // Section III-A: as an extra *seed*, v1 (node 2) is the better pick;
    // as a *boost*, v0 (node 1) is far better — the two problems differ.
    let g = figure1();
    // Extra-seed marginal influence.
    let sigma_s_v0 = exact_sigma(&g, &[NodeId(0), NodeId(1)], &[]);
    let sigma_s_v1 = exact_sigma(&g, &[NodeId(0), NodeId(2)], &[]);
    assert!(sigma_s_v1 > sigma_s_v0, "as a seed, v1 wins");
    // Boost comparison.
    assert!(
        exact_boost(&g, &S, &[NodeId(1)]) > exact_boost(&g, &S, &[NodeId(2)]),
        "as a boost, v0 wins"
    );
}
