//! The parallel PRR engine's determinism contract, end to end:
//!
//! * PRR-graph sampling is **thread-count invariant** — a fixed seed and
//!   target sequence yields an identical pool (and therefore identical
//!   `Δ̂` / `µ̂` estimates and selected boost sets) for any thread count;
//! * the index-accelerated greedy `Δ̂` selection is **bit-identical** to
//!   the naive full re-traversal greedy, on ER graphs and on the set-cover
//!   gadget where the optimum is known by construction.

use kboost::core::{prr_boost, BoostOptions, PrrPool};
use kboost::graph::generators::{erdos_renyi, set_cover_gadget, SetCoverInstance};
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::{DiGraph, NodeId};
use kboost::prr::{greedy_delta_selection, greedy_delta_selection_naive, PrrFullSource};
use kboost::rrset::sketch::SketchPool;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn er_graph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi(n, m, ProbabilityModel::Constant(0.3), 2.0, &mut rng)
}

/// Samples a PRR pool for `(g, seeds, k)` with the given thread count.
fn sample_pool(g: &DiGraph, seeds: &[NodeId], k: usize, threads: usize, target: u64) -> PrrPool {
    let source = PrrFullSource::new(g, seeds, k);
    let mut sketches = SketchPool::new(0xDE7, threads);
    sketches.extend_to(&source, target);
    PrrPool::new(sketches, g.num_nodes(), threads)
}

#[test]
fn prr_sampling_thread_count_invariant() {
    let g = er_graph(120, 600, 5);
    let seeds = [NodeId(0), NodeId(1)];
    let k = 3;
    let reference = sample_pool(&g, &seeds, k, 1, 30_000);
    let ref_selection = greedy_delta_selection(reference.arena(), g.num_nodes(), k, 1);

    for threads in [2usize, 7] {
        let pool = sample_pool(&g, &seeds, k, threads, 30_000);
        assert_eq!(pool.total_samples(), reference.total_samples());
        assert_eq!(pool.num_boostable(), reference.num_boostable());
        // Exact equality: the pools must be the same pools, not just
        // statistically close ones.
        for set in [
            vec![NodeId(3)],
            vec![NodeId(5), NodeId(9)],
            ref_selection.selected.clone(),
        ] {
            assert_eq!(
                pool.delta_hat(&set),
                reference.delta_hat(&set),
                "Δ̂ at {threads} threads"
            );
            assert_eq!(
                pool.mu_hat(&set),
                reference.mu_hat(&set),
                "µ̂ at {threads} threads"
            );
        }
        let selection = greedy_delta_selection(pool.arena(), g.num_nodes(), k, threads);
        assert_eq!(selection, ref_selection, "selection at {threads} threads");
    }
}

#[test]
fn prr_boost_end_to_end_thread_count_invariant() {
    let g = er_graph(60, 240, 11);
    let seeds = [NodeId(0)];
    let mk_opts = |threads: usize| BoostOptions {
        threads,
        seed: 77,
        max_sketches: Some(60_000),
        min_sketches: 20_000,
        ..Default::default()
    };
    let (ref_out, _) = prr_boost(&g, &seeds, 2, &mk_opts(1));
    for threads in [3usize, 8] {
        let (out, _) = prr_boost(&g, &seeds, 2, &mk_opts(threads));
        assert_eq!(out.best, ref_out.best, "best at {threads} threads");
        assert_eq!(out.b_mu, ref_out.b_mu, "B_µ at {threads} threads");
        assert_eq!(out.b_delta, ref_out.b_delta, "B_Δ at {threads} threads");
        assert_eq!(
            out.estimate, ref_out.estimate,
            "estimate at {threads} threads"
        );
        assert_eq!(out.stats.total_samples, ref_out.stats.total_samples);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Index-accelerated greedy must match the naive re-traversal greedy on
    /// pools sampled from random ER graphs, for every budget.
    #[test]
    fn indexed_greedy_matches_naive_on_er(
        graph_seed in 0u64..5_000,
        pool_seed in 0u64..5_000,
        k in 1usize..5,
    ) {
        let g = er_graph(14, 40, graph_seed);
        let source = PrrFullSource::new(&g, &[NodeId(0)], k);
        let mut sketches = SketchPool::new(pool_seed, 2);
        sketches.extend_to(&source, 400);
        let pool = PrrPool::new(sketches, g.num_nodes(), 2);
        let fast = greedy_delta_selection(pool.arena(), g.num_nodes(), k, 2);
        let naive = greedy_delta_selection_naive(pool.arena(), g.num_nodes(), k);
        prop_assert_eq!(fast, naive);
    }

    /// Same equivalence on the set-cover gadget, whose PRR-graphs have the
    /// tripartite structure of the NP-hardness proof.
    #[test]
    fn indexed_greedy_matches_naive_on_gadget(
        pool_seed in 0u64..5_000,
        k in 1usize..4,
    ) {
        let instance = SetCoverInstance {
            num_elements: 6,
            subsets: vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5], vec![1, 4]],
        };
        let g = set_cover_gadget(&instance);
        let source = PrrFullSource::new(&g, &[NodeId(0)], k);
        let mut sketches = SketchPool::new(pool_seed, 3);
        sketches.extend_to(&source, 600);
        let pool = PrrPool::new(sketches, g.num_nodes(), 3);
        let fast = greedy_delta_selection(pool.arena(), g.num_nodes(), k, 3);
        let naive = greedy_delta_selection_naive(pool.arena(), g.num_nodes(), k);
        prop_assert_eq!(fast, naive);
    }
}
