//! The unified engine API's contracts, end to end:
//!
//! * **equivalence** — selections through `Engine` are bit-identical to
//!   the legacy hand-wired pipeline (`SketchPool → PrrPool →
//!   greedy_delta_selection`, and `prr_boost` for the full Algorithm 2)
//!   for the same `(seed, targets, k)`, at 1 and 7 threads;
//! * **feasibility** — every `BoostAlgorithm` in the registry returns at
//!   most `k` distinct, in-range, non-seed nodes on random ER and
//!   set-cover-gadget instances (or a typed error, e.g. `TreeExact` on a
//!   non-tree);
//! * **validation** — `EngineBuilder::build` rejects bad configurations
//!   with a typed `KboostError::Config` naming the offending field;
//! * **online** — `Engine::apply_mutations` reproduces a hand-wired
//!   `PoolMaintainer` epoch for epoch, and rejects out-of-order epochs
//!   with `KboostError::EpochOrder` instead of panicking;
//! * **latency contract** — `solve_within(Budget::unlimited())` is
//!   bit-identical to `solve`; a sample-capped budget yields a valid
//!   partial solution flagged `interrupted` with an honest (larger)
//!   `achieved_epsilon`; a cancelled epoch rolls back byte-identically
//!   and the batch retries verbatim; the progress observer sees every
//!   poll.

use kboost::core::{prr_boost, BoostOptions, PrrPool};
use kboost::engine::{
    Algorithm, BoostAlgorithm, Budget, CancelFlag, EngineBuilder, InterruptCause, KboostError,
    MutationError, Pipeline, Sampling,
};
use kboost::graph::generators::{erdos_renyi, set_cover_gadget, SetCoverInstance};
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::{DiGraph, EdgeProbs, NodeId};
use kboost::online::{MaintainerOptions, MutationLog, PoolMaintainer, Staleness};
use kboost::prr::{greedy_delta_selection, PrrFullSource};
use kboost::rrset::sketch::SketchPool;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn er_graph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi(n, m, ProbabilityModel::Constant(0.3), 2.0, &mut rng)
}

fn gadget() -> DiGraph {
    set_cover_gadget(&SetCoverInstance {
        num_elements: 6,
        subsets: vec![
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4, 5],
            vec![0, 5],
            vec![1, 4],
        ],
    })
}

/// The legacy hand-wired pipeline the engine must reproduce bit for bit:
/// chunk-seeded sampling to a fixed target, arena pool, indexed greedy.
fn hand_wired_pool(
    g: &DiGraph,
    seeds: &[NodeId],
    k: usize,
    threads: usize,
    target: u64,
    seed: u64,
) -> PrrPool {
    let source = PrrFullSource::new(g, seeds, k);
    let mut sketches = SketchPool::new(seed, threads);
    sketches.extend_to(&source, target);
    PrrPool::new(sketches, g.num_nodes(), threads)
}

/// Acceptance equivalence: `Engine`-selected boost sets are bit-identical
/// to the hand-wired `SketchPool → PrrPool → greedy_delta_selection`
/// path for the same `(seed, targets, k)`, at 1 and 7 threads.
#[test]
fn engine_prr_boost_bit_identical_to_hand_wired_pipeline() {
    let g = er_graph(120, 600, 5);
    let seeds = [NodeId(0), NodeId(1)];
    let (k, target, seed) = (3usize, 30_000u64, 0xDE7u64);

    for threads in [1usize, 7] {
        let pool = hand_wired_pool(&g, &seeds, k, threads, target, seed);
        let direct = greedy_delta_selection(pool.arena(), g.num_nodes(), k, threads);

        let mut engine = EngineBuilder::new(g.clone())
            .seeds(seeds)
            .k(k)
            .threads(threads)
            .seed(seed)
            .sampling(Sampling::Fixed { samples: target })
            .build()
            .unwrap();
        let solution = engine.solve(&Algorithm::PrrBoost).unwrap();

        assert_eq!(
            solution.boost_set, direct.selected,
            "engine selection differs from direct greedy at {threads} threads"
        );
        assert_eq!(solution.stats.covered, direct.covered);
        // Not just the same selection: the same pool, byte for byte.
        let engine_pool = engine.pool().unwrap();
        assert!(
            engine_pool.arena() == pool.arena(),
            "engine arena differs from the hand-wired arena at {threads} threads"
        );
        assert_eq!(engine_pool.total_samples(), pool.total_samples());
        assert_eq!(solution.delta_hat, Some(pool.delta_hat(&direct.selected)));
        assert_eq!(solution.mu_hat, Some(pool.mu_hat(&direct.selected)));
    }
}

/// The engine's legacy-pipeline oracle mode builds the identical arena
/// and selection through per-graph payload copies.
#[test]
fn engine_legacy_pipeline_matches_shard_pipeline() {
    let g = er_graph(80, 320, 9);
    let seeds = [NodeId(2)];
    let build = |pipeline| {
        let mut engine = EngineBuilder::new(g.clone())
            .seeds(seeds)
            .k(2)
            .threads(3)
            .seed(0xFACE)
            .sampling(Sampling::Fixed { samples: 12_000 })
            .pipeline(pipeline)
            .build()
            .unwrap();
        let sol = engine.solve(&Algorithm::PrrBoost).unwrap();
        (engine, sol)
    };
    let (mut shard, shard_sol) = build(Pipeline::Shard);
    let (mut legacy, legacy_sol) = build(Pipeline::Legacy);
    assert!(shard.pool().unwrap().arena() == legacy.pool().unwrap().arena());
    assert_eq!(shard_sol.boost_set, legacy_sol.boost_set);
    // Only the legacy pipeline pays a payload→arena copy stage.
    assert_eq!(shard_sol.stats.convert_secs, 0.0);
}

/// Full Algorithm 2 through the engine == the hand-wired `prr_boost`,
/// IMM sizing included — B_µ, B_Δ, the sandwich choice and Δ̂.
#[test]
fn engine_sandwich_matches_prr_boost_under_imm_sampling() {
    let g = er_graph(60, 240, 11);
    let seeds = [NodeId(0)];
    let k = 2;
    let opts = BoostOptions {
        epsilon: 0.5,
        ell: 1.0,
        threads: 2,
        seed: 77,
        max_sketches: Some(60_000),
        min_sketches: 20_000,
    };
    let (outcome, pool) = prr_boost(&g, &seeds, k, &opts);

    let mut engine = EngineBuilder::new(g.clone())
        .seeds(seeds)
        .k(k)
        .epsilon(0.5)
        .ell(1.0)
        .threads(2)
        .seed(77)
        .max_sketches(60_000)
        .min_sketches(20_000)
        .build()
        .unwrap();
    let solution = engine.solve(&Algorithm::Sandwich).unwrap();

    assert_eq!(solution.boost_set, outcome.best);
    assert_eq!(solution.delta_hat, Some(outcome.estimate));
    let cert = solution.certificate.as_ref().expect("sandwich certificate");
    assert_eq!(cert.b_mu, outcome.b_mu);
    assert_eq!(cert.b_delta, outcome.b_delta);
    assert!(engine.pool().unwrap().arena() == pool.arena());
}

/// Runs every registry algorithm on `(g, seeds, k)` and checks the
/// returned set is feasible: ≤ k nodes, in range, no duplicates, no
/// seeds. `TreeExact` is allowed (expected, on non-trees) to fail with a
/// typed tree error instead.
fn assert_registry_feasible(g: &DiGraph, seeds: &[NodeId], k: usize, samples: u64) {
    let mut engine = EngineBuilder::new(g.clone())
        .seeds(seeds.to_vec())
        .k(k)
        .threads(2)
        .seed(0xFEA5)
        .sampling(Sampling::Fixed { samples })
        .max_sketches(samples)
        .build()
        .unwrap();
    let is_seed: Vec<bool> = {
        let mut m = vec![false; g.num_nodes()];
        for &s in seeds {
            m[s.index()] = true;
        }
        m
    };
    for algo in Algorithm::registry() {
        let solution = match engine.solve(&algo) {
            Ok(s) => s,
            Err(KboostError::Tree(_)) => {
                assert!(
                    matches!(algo, Algorithm::TreeExact { .. }),
                    "only TreeExact may fail with a tree error, got one from {}",
                    algo.name()
                );
                continue;
            }
            Err(e) => panic!("{} failed: {e}", algo.name()),
        };
        assert_eq!(solution.algorithm, algo.name());
        assert!(
            solution.boost_set.len() <= k,
            "{} returned {} nodes for k = {k}",
            algo.name(),
            solution.boost_set.len()
        );
        let mut seen = vec![false; g.num_nodes()];
        for &v in &solution.boost_set {
            assert!(
                v.index() < g.num_nodes(),
                "{}: {v} out of range",
                algo.name()
            );
            assert!(!is_seed[v.index()], "{} selected seed {v}", algo.name());
            assert!(!seen[v.index()], "{} selected {v} twice", algo.name());
            seen[v.index()] = true;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cross-algorithm feasibility on random ER instances.
    #[test]
    fn registry_feasible_on_random_er(seed in 0u64..200, k in 1usize..4) {
        let g = er_graph(40, 160, seed);
        let seeds = [NodeId((seed % 7) as u32), NodeId(20 + (seed % 5) as u32)];
        assert_registry_feasible(&g, &seeds, k, 4_000);
    }
}

/// Cross-algorithm feasibility on the set-cover gadget (a known-optimum
/// instance with boost-only structure).
#[test]
fn registry_feasible_on_gadget() {
    let g = gadget();
    assert_registry_feasible(&g, &[NodeId(0)], 2, 6_000);
}

#[test]
fn builder_rejects_bad_configs_with_typed_errors() {
    let g = er_graph(20, 60, 1);
    let field_of = |r: Result<kboost::engine::Engine, KboostError>| match r {
        Err(KboostError::Config { field, .. }) => field,
        other => panic!(
            "expected a config error, got {:?}",
            other.err().map(|e| e.to_string())
        ),
    };

    assert_eq!(
        field_of(EngineBuilder::new(g.clone()).k(1).build()),
        "seeds"
    );
    assert_eq!(
        field_of(EngineBuilder::new(g.clone()).seeds([NodeId(99)]).build()),
        "seeds"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(3), NodeId(3)])
                .build()
        ),
        "seeds"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .k(20)
                .build()
        ),
        "k"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .epsilon(1.5)
                .build()
        ),
        "epsilon"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .ell(-1.0)
                .build()
        ),
        "ell"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .failure_probability(2.0)
                .build()
        ),
        "failure_probability"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .threads(0)
                .build()
        ),
        "threads"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .sampling(Sampling::Fixed { samples: 0 })
                .build()
        ),
        "sampling"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .max_sketches(10)
                .min_sketches(100)
                .build()
        ),
        "max_sketches"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .compact_threshold(1.5)
                .build()
        ),
        "compact_threshold"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .pipeline(Pipeline::Legacy)
                .build()
        ),
        "pipeline"
    );
    // Exact staleness off the online path (adaptive sampling), on the
    // legacy pipeline, or with a bad bloom width — all typed errors.
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .staleness(Staleness::Exact)
                .build()
        ),
        "staleness"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .sampling(Sampling::Fixed { samples: 1_000 })
                .pipeline(Pipeline::Legacy)
                .staleness(Staleness::Exact)
                .build()
        ),
        "staleness"
    );
    assert_eq!(
        field_of(
            EngineBuilder::new(g.clone())
                .seeds([NodeId(0)])
                .sampling(Sampling::Fixed { samples: 1_000 })
                .staleness(Staleness::ExactBloom { bits: 48 })
                .build()
        ),
        "staleness"
    );
    // ...while the valid online spelling builds.
    assert!(EngineBuilder::new(g.clone())
        .seeds([NodeId(0)])
        .sampling(Sampling::Fixed { samples: 1_000 })
        .staleness(Staleness::ExactBloom { bits: 256 })
        .build()
        .is_ok());
    // δ = n^-ℓ round-trips into a positive ℓ.
    let engine = EngineBuilder::new(g)
        .seeds([NodeId(0)])
        .failure_probability(0.01)
        .build()
        .unwrap();
    assert!(engine.config().ell > 0.0);
}

/// `Engine::apply_mutations` drives the maintainer identically to the
/// hand-wired `PoolMaintainer`, epoch for epoch, and turns the epoch
/// contiguity panic into a typed error.
#[test]
fn engine_online_lifecycle_matches_hand_wired_maintainer() {
    let g = er_graph(50, 200, 21);
    let seeds = vec![NodeId(0)];
    let (k, samples, seed) = (2usize, 6_000u64, 0xBEEFu64);

    let mut engine = EngineBuilder::new(g.clone())
        .seeds(seeds.clone())
        .k(k)
        .threads(2)
        .seed(seed)
        .sampling(Sampling::Fixed { samples })
        .build()
        .unwrap();
    let mut maintainer = PoolMaintainer::build(
        g.clone(),
        seeds,
        MaintainerOptions {
            target_samples: samples,
            k,
            threads: 2,
            base_seed: seed,
            compact_threshold: 0.25,
            staleness: Staleness::Approximate,
        },
    )
    .unwrap();

    let mut log = MutationLog::new();
    log.set_probs(NodeId(1), NodeId(2), EdgeProbs::new(0.1, 0.9).unwrap());
    log.remove_edge(NodeId(0), NodeId(1));
    let b1 = log.seal_epoch();
    log.insert_edge(NodeId(7), NodeId(3), EdgeProbs::new(0.2, 0.4).unwrap());
    let b2 = log.seal_epoch();

    // Applying epoch 2 before epoch 1 is a typed error, not a panic.
    let err = engine.apply_mutations(&b2).unwrap_err();
    assert_eq!(
        err,
        KboostError::EpochOrder {
            expected: 1,
            got: 2
        }
    );

    for batch in [&b1, &b2] {
        let engine_report = engine.apply_mutations(batch).unwrap();
        let maintainer_report = maintainer.apply_epoch(batch).unwrap();
        assert_eq!(engine_report, maintainer_report);
    }
    assert_eq!(engine.epoch(), 2);
    assert!(engine.pool().unwrap().arena() == maintainer.pool().arena());
    let engine_sel = engine.solve(&Algorithm::PrrBoost).unwrap();
    assert_eq!(engine_sel.boost_set, maintainer.select(k).selected);
    assert_eq!(engine.graph().num_edges(), maintainer.graph().num_edges());

    // Adaptive-sampling engines cannot go online — typed, not a panic.
    let mut offline = EngineBuilder::new(g)
        .seeds([NodeId(0)])
        .k(1)
        .build()
        .unwrap();
    assert!(matches!(
        offline.apply_mutations(&b1),
        Err(KboostError::Unsupported { .. })
    ));
}

/// Baselines report estimates only once a pool exists; `evaluate` scores
/// any set on demand.
#[test]
fn baseline_estimates_follow_pool_lifecycle() {
    let g = er_graph(40, 160, 31);
    let mut engine = EngineBuilder::new(g)
        .seeds([NodeId(0)])
        .k(2)
        .threads(2)
        .seed(3)
        .sampling(Sampling::Fixed { samples: 4_000 })
        .build()
        .unwrap();
    let before = engine.solve(&Algorithm::PageRank).unwrap();
    assert!(before.delta_hat.is_none(), "no pool was built yet");
    let (delta, mu) = engine.evaluate(&before.boost_set).unwrap();
    assert!(delta >= 0.0 && mu >= 0.0 && mu <= delta + 1e-12);
    let after = engine.solve(&Algorithm::PageRank).unwrap();
    assert_eq!(after.delta_hat, Some(delta));
    assert_eq!(after.boost_set, before.boost_set);
}

/// Malformed mutation batches — the one input a service feeds
/// continuously — are typed [`KboostError::Mutation`] errors on the
/// engine path, validated at ingress: never an index panic inside the
/// maintainer, and never a partially applied epoch.
#[test]
fn engine_rejects_adversarial_mutation_batches() {
    let g = er_graph(20, 60, 41);
    let mut engine = EngineBuilder::new(g)
        .seeds([NodeId(0)])
        .k(1)
        .threads(1)
        .sampling(Sampling::Fixed { samples: 500 })
        .build()
        .unwrap();

    // Out-of-universe endpoint, rejected on both the dry-run and the
    // apply path.
    let mut log = MutationLog::new();
    log.remove_edge(NodeId(10_000), NodeId(0));
    let err = engine.stale_graphs(log.pending()).unwrap_err();
    assert_eq!(
        err,
        KboostError::Mutation(MutationError::NodeOutOfRange {
            node: NodeId(10_000),
            n: 20
        })
    );
    let batch = log.seal_epoch();
    assert_eq!(
        engine.apply_mutations(&batch).unwrap_err(),
        KboostError::Mutation(MutationError::NodeOutOfRange {
            node: NodeId(10_000),
            n: 20
        })
    );
    assert_eq!(
        engine.epoch(),
        0,
        "rejected batch must not consume an epoch"
    );

    // A self-loop upsert is equally typed.
    let mut log = MutationLog::new();
    log.insert_edge(NodeId(3), NodeId(3), EdgeProbs::new(0.1, 0.2).unwrap());
    assert_eq!(
        engine.apply_mutations(&log.seal_epoch()).unwrap_err(),
        KboostError::Mutation(MutationError::SelfLoop { node: NodeId(3) })
    );

    // A batch mixing a valid removal with an invalid upsert is rejected
    // wholesale — the valid prefix is not applied.
    let edges_before = engine.graph().num_edges();
    let mut log = MutationLog::new();
    log.remove_edge(NodeId(0), NodeId(1));
    log.insert_edge(NodeId(2), NodeId(10_000), EdgeProbs::new(0.1, 0.2).unwrap());
    assert!(matches!(
        engine.apply_mutations(&log.seal_epoch()).unwrap_err(),
        KboostError::Mutation(MutationError::NodeOutOfRange { .. })
    ));
    assert_eq!(engine.graph().num_edges(), edges_before);

    // The engine is still fully usable after every rejection... but the
    // logs above consumed epoch numbers, so re-sync with a fresh batch.
    let mut log = MutationLog::new();
    log.remove_edge(NodeId(0), NodeId(1));
    let report = engine.apply_mutations(&log.seal_epoch()).unwrap();
    assert_eq!(report.epoch, 1);
    assert!(engine.pool().unwrap().total_samples() > 0);
}

/// PRR-Boost-LB honors the engine's sampling policy: under SSA early
/// stopping it must not silently fall back to IMM worst-case sizing.
#[test]
fn prr_boost_lb_honors_ssa_sampling() {
    let g = er_graph(40, 160, 51);
    let build = |sampling| {
        let mut engine = EngineBuilder::new(g.clone())
            .seeds([NodeId(0)])
            .k(2)
            .threads(2)
            .seed(9)
            .sampling(sampling)
            .max_sketches(200_000)
            .build()
            .unwrap();
        engine.solve(&Algorithm::PrrBoostLb).unwrap()
    };
    let ssa = build(Sampling::Ssa { initial: 500 });
    let imm = build(Sampling::Imm);
    assert!(ssa.stats.total_samples > 0);
    assert!(ssa.mu_hat.unwrap() >= 0.0);
    // SSA stops as soon as the estimate validates — far below the IMM
    // worst-case bound on this instance. Identical counts would mean the
    // policy was ignored.
    assert!(
        ssa.stats.total_samples < imm.stats.total_samples,
        "SSA drew {} samples vs IMM {} — sampling policy ignored?",
        ssa.stats.total_samples,
        imm.stats.total_samples
    );
}

/// The latency contract's identity leg: `solve_within` under an
/// unlimited budget is bit-identical to plain `solve` — same selection,
/// same estimates, same certificate, same sample count — and reports an
/// achieved ε no worse than the configured one.
#[test]
fn solve_within_unlimited_is_bit_identical_to_solve() {
    let g = er_graph(60, 240, 61);
    let build = || {
        EngineBuilder::new(g.clone())
            .seeds([NodeId(0)])
            .k(2)
            .epsilon(0.5)
            .ell(1.0)
            .threads(2)
            .seed(17)
            .max_sketches(80_000)
            .min_sketches(10_000)
            .build()
            .unwrap()
    };
    let plain = build().solve(&Algorithm::Sandwich).unwrap();
    let mut budgeted_engine = build();
    let budgeted = budgeted_engine
        .solve_within(&Algorithm::Sandwich, &Budget::unlimited())
        .unwrap();

    assert_eq!(budgeted.boost_set, plain.boost_set);
    assert_eq!(budgeted.delta_hat, plain.delta_hat);
    assert_eq!(budgeted.mu_hat, plain.mu_hat);
    assert_eq!(budgeted.stats.total_samples, plain.stats.total_samples);
    assert_eq!(budgeted.stats.boostable, plain.stats.boostable);
    assert_eq!(budgeted.stats.covered, plain.stats.covered);
    assert_eq!(
        budgeted.stats.achieved_epsilon,
        plain.stats.achieved_epsilon
    );
    assert!(!budgeted.stats.interrupted);
    let (bc, pc) = (
        budgeted.certificate.as_ref().unwrap(),
        plain.certificate.as_ref().unwrap(),
    );
    assert_eq!(bc.b_mu, pc.b_mu);
    assert_eq!(bc.b_delta, pc.b_delta);
    assert_eq!(bc.delta_hat_mu, pc.delta_hat_mu);
    assert_eq!(bc.delta_hat_delta, pc.delta_hat_delta);
    assert_eq!(bc.chose_delta, pc.chose_delta);
    // The configured accuracy was met: achieved ε ≤ configured ε.
    assert!(plain.stats.achieved_epsilon.unwrap() <= 0.5 + 1e-12);
}

/// A sample-capped budget stops the build at a deterministic chunk
/// boundary: the solve still returns a feasible solution on the partial
/// pool, flags it `interrupted`, and reports the honest — larger —
/// achieved ε. The partial pool is the bit-identical prefix of the full
/// one.
#[test]
fn sample_budget_yields_flagged_partial_solution() {
    let g = er_graph(60, 240, 71);
    let build = |samples: u64| {
        EngineBuilder::new(g.clone())
            .seeds([NodeId(0)])
            .k(2)
            .threads(3)
            .seed(23)
            .sampling(Sampling::Fixed { samples })
            .build()
            .unwrap()
    };

    let mut full_engine = build(20_000);
    let full = full_engine.solve(&Algorithm::PrrBoost).unwrap();
    assert!(!full.stats.interrupted);
    assert!(!full_engine.interrupted());

    let mut partial_engine = build(20_000);
    let partial = partial_engine
        .solve_within(
            &Algorithm::PrrBoost,
            &Budget::unlimited().max_samples(2_048),
        )
        .unwrap();
    assert!(partial.stats.interrupted);
    assert!(partial_engine.interrupted());
    assert_eq!(partial.stats.total_samples, 2_048);
    assert!(partial.boost_set.len() <= 2);
    // Fewer samples can only certify a looser ε.
    assert!(
        partial.stats.achieved_epsilon.unwrap() > full.stats.achieved_epsilon.unwrap(),
        "2k-sample ε {} should exceed 20k-sample ε {}",
        partial.stats.achieved_epsilon.unwrap(),
        full.stats.achieved_epsilon.unwrap()
    );
    // The partial pool is a bit-identical prefix: an engine *configured*
    // for that target builds the same arena.
    let mut prefix_engine = build(2_048);
    assert!(partial_engine.pool().unwrap().arena() == prefix_engine.pool().unwrap().arena());

    // The interrupted pool keeps serving, and flags every later solve.
    let again = partial_engine.solve(&Algorithm::PrrBoost).unwrap();
    assert_eq!(again.boost_set, partial.boost_set);
    assert!(again.stats.interrupted);
}

/// A cancelled epoch refresh surfaces as `KboostError::Interrupted`,
/// rolls the pool back byte-identically, and the identical batch retried
/// with an unlimited budget converges to the uninterrupted result.
#[test]
fn cancelled_epoch_rolls_back_and_retries_verbatim() {
    let g = er_graph(50, 200, 81);
    let build = || {
        EngineBuilder::new(g.clone())
            .seeds([NodeId(0)])
            .k(2)
            .threads(2)
            .seed(0xCA11)
            .sampling(Sampling::Fixed { samples: 6_000 })
            .build()
            .unwrap()
    };
    let mut engine = build();
    engine.pool().unwrap();

    let mut log = MutationLog::new();
    log.remove_edge(NodeId(0), NodeId(1));
    log.set_probs(NodeId(1), NodeId(2), EdgeProbs::new(0.1, 0.9).unwrap());
    let batch = log.seal_epoch();

    let arena_before = engine.pool().unwrap().arena().clone();
    let cancelled = CancelFlag::new();
    cancelled.cancel();
    let err = engine
        .apply_mutations_within(&batch, &Budget::unlimited().cancel_flag(cancelled))
        .unwrap_err();
    assert_eq!(
        err,
        KboostError::Interrupted {
            epoch: 1,
            cause: InterruptCause::Cancelled
        }
    );
    // Rollback: nothing moved.
    assert_eq!(engine.epoch(), 0);
    assert_eq!(engine.graph().num_edges(), g.num_edges());
    assert!(*engine.pool().unwrap().arena() == arena_before);

    // Retry verbatim == an engine that never saw the fault.
    let report = engine.apply_mutations(&batch).unwrap();
    assert_eq!(report.epoch, 1);
    let mut oracle = build();
    let oracle_report = oracle.apply_mutations(&batch).unwrap();
    assert_eq!(report, oracle_report);
    assert!(engine.pool().unwrap().arena() == oracle.pool().unwrap().arena());
}

/// The progress observer sees every terminator poll: monotone sample
/// counts, and (on the staged fixed-target build) stage ticks carrying a
/// running `Δ̂` and certificate width.
#[test]
fn budget_observer_reports_progress_ticks() {
    use std::sync::{Arc, Mutex};

    let g = er_graph(50, 200, 91);
    let mut engine = EngineBuilder::new(g)
        .seeds([NodeId(0)])
        .k(2)
        .threads(2)
        .seed(5)
        .sampling(Sampling::Fixed { samples: 40_000 })
        .build()
        .unwrap();

    let ticks: Arc<Mutex<Vec<kboost::engine::SolveProgress>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&ticks);
    let solution = engine
        .solve_within(
            &Algorithm::PrrBoost,
            &Budget::unlimited().observe(move |p| sink.lock().unwrap().push(p.clone())),
        )
        .unwrap();
    assert!(!solution.stats.interrupted);

    let ticks = ticks.lock().unwrap();
    assert!(!ticks.is_empty(), "observer never fired");
    let mut last = 0u64;
    for t in ticks.iter() {
        assert!(t.samples >= last, "sample counts must be monotone");
        last = t.samples;
    }
    // The staged build reports richer ticks: target, running Δ̂ and the
    // honest ε the samples so far would certify.
    let stage_ticks: Vec<_> = ticks.iter().filter(|t| t.delta_hat.is_some()).collect();
    assert!(
        !stage_ticks.is_empty(),
        "no stage ticks with a running estimate were observed"
    );
    for t in &stage_ticks {
        assert_eq!(t.target, Some(40_000));
        assert!(t.delta_hat.unwrap() >= 0.0);
        assert!(t.achieved_epsilon.unwrap().is_finite());
        // Every stage tick streams an improving solution: the boost set
        // the stage's greedy selection picked, within budget and never
        // spending budget on a seed.
        let best = t
            .best_boost
            .as_ref()
            .expect("stage ticks carry a boost set");
        assert!(best.len() <= 2);
        assert!(!best.contains(&NodeId(0)), "seeds are ineligible");
    }
    // Chunk ticks (no running estimate) never carry a boost set — the
    // streamed solution is a stage-boundary artifact.
    for t in ticks.iter().filter(|t| t.delta_hat.is_none()) {
        assert!(t.best_boost.is_none());
    }
    // ε tightens as samples accumulate.
    let eps: Vec<f64> = stage_ticks
        .iter()
        .map(|t| t.achieved_epsilon.unwrap())
        .collect();
    for w in eps.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-9,
            "achieved ε must shrink with samples: {eps:?}"
        );
    }
}
