//! Cross-crate estimator consistency on random graphs: the PRR-graph
//! pool, the coupled Monte-Carlo simulator, the µ-model simulator and the
//! exact enumerator must all agree within sampling error.

use kboost::core::{prr_boost, BoostOptions};
use kboost::diffusion::exact::exact_boost;
use kboost::diffusion::monte_carlo::{estimate_boost, McConfig};
use kboost::diffusion::mu_model::estimate_mu;
use kboost::graph::generators::erdos_renyi;
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::{DiGraph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_random(seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi(9, 16, ProbabilityModel::Constant(0.35), 2.0, &mut rng)
}

#[test]
fn delta_hat_is_unbiased_on_random_graphs() {
    let opts = BoostOptions {
        threads: 2,
        seed: 41,
        min_sketches: 120_000,
        max_sketches: Some(240_000),
        ..Default::default()
    };
    for seed in 0..5u64 {
        let g = small_random(seed);
        let seeds = [NodeId(0)];
        let (_, pool) = prr_boost(&g, &seeds, 2, &opts);
        for set in [vec![NodeId(3)], vec![NodeId(3), NodeId(5)], vec![NodeId(7)]] {
            let est = pool.delta_hat(&set);
            let truth = exact_boost(&g, &seeds, &set);
            assert!(
                (est - truth).abs() < 0.06,
                "seed {seed} B={set:?}: Δ̂ {est} vs exact {truth}"
            );
        }
    }
}

#[test]
fn mu_hat_matches_mu_model_simulation() {
    let opts = BoostOptions {
        threads: 2,
        seed: 43,
        min_sketches: 120_000,
        max_sketches: Some(240_000),
        ..Default::default()
    };
    for seed in 0..4u64 {
        let g = small_random(seed + 50);
        let seeds = [NodeId(0), NodeId(1)];
        let (_, pool) = prr_boost(&g, &seeds, 2, &opts);
        for set in [vec![NodeId(4)], vec![NodeId(4), NodeId(6)]] {
            let mu_hat = pool.mu_hat(&set);
            let mu_sim = estimate_mu(&g, &seeds, &set, 150_000, 77);
            assert!(
                (mu_hat - mu_sim).abs() < 0.06,
                "seed {seed} B={set:?}: µ̂ {mu_hat} vs µ-model {mu_sim}"
            );
            let delta = pool.delta_hat(&set);
            assert!(mu_hat <= delta + 0.03, "µ̂ {mu_hat} > Δ̂ {delta}");
        }
    }
}

#[test]
fn coupled_mc_matches_exact_on_random_graphs() {
    let mc = McConfig {
        runs: 150_000,
        threads: 4,
        seed: 9,
    };
    for seed in 0..4u64 {
        let g = small_random(seed + 100);
        let seeds = [NodeId(0)];
        let set = vec![NodeId(2), NodeId(5)];
        let sim = estimate_boost(&g, &seeds, &set, &mc);
        let truth = exact_boost(&g, &seeds, &set);
        assert!(
            (sim - truth).abs() < 0.02,
            "seed {seed}: MC Δ {sim} vs exact {truth}"
        );
    }
}

#[test]
fn greedy_delta_solution_is_at_least_as_good_as_any_singleton() {
    // The greedy Δ̂ selection with k = 1 must match the best single node
    // by exact evaluation (up to sampling noise).
    let opts = BoostOptions {
        threads: 2,
        seed: 47,
        min_sketches: 200_000,
        max_sketches: Some(300_000),
        ..Default::default()
    };
    for seed in 0..3u64 {
        let g = small_random(seed + 200);
        let seeds = [NodeId(0)];
        let (out, _) = prr_boost(&g, &seeds, 1, &opts);
        assert_eq!(out.best.len().max(1), 1);
        let chosen = exact_boost(&g, &seeds, &out.best);
        let best_single = (0..9u32)
            .filter(|&v| v != 0)
            .map(|v| exact_boost(&g, &seeds, &[NodeId(v)]))
            .fold(0.0f64, f64::max);
        assert!(
            chosen >= best_single - 0.05,
            "seed {seed}: picked Δ {chosen} vs best singleton {best_single}"
        );
    }
}
