//! Kernel ≡ scalar-oracle equivalence for the data-oriented phase-I
//! sampling kernel, end to end through the pool machinery:
//!
//! * a pool sampled through the batched-draw kernel
//!   ([`PrrFullSource::new`]/[`with_footprints`]) is **byte-equal** —
//!   covers, arena storage arrays, and footprint columns — to one sampled
//!   through the scalar oracle ([`PrrFullSource::scalar_oracle`]) with the
//!   same `(base_seed, target)`, across graph families (ER, preferential
//!   attachment, the set-cover gadget), thread counts, footprint modes,
//!   and terminator interruption points;
//! * [`PrrLbSource`] covers agree between kernel and scalar oracle;
//! * an interrupted-then-resumed kernel extension equals the
//!   uninterrupted pool (chunk-prefix contract survives the kernel's
//!   scratch reuse).
//!
//! [`with_footprints`]: PrrFullSource::with_footprints

use kboost::graph::generators::{
    erdos_renyi, preferential_attachment, set_cover_gadget, SetCoverInstance,
};
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::{DiGraph, NodeId};
use kboost::prr::{FootprintMode, PrrArena, PrrArenaShard, PrrFullSource, PrrLbSource};
use kboost::rrset::sketch::{ExtendStatus, SketchPool};
use kboost::rrset::terminator::{StopAtChunk, Unlimited};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Clone, Copy, Debug)]
enum Family {
    Er,
    Pa,
    Gadget,
}

fn build_graph(family: Family, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    match family {
        Family::Er => erdos_renyi(16, 50, ProbabilityModel::Constant(0.3), 2.0, &mut rng),
        Family::Pa => {
            preferential_attachment(18, 2, 0.3, ProbabilityModel::Trivalency, 2.0, &mut rng)
        }
        Family::Gadget => set_cover_gadget(&SetCoverInstance {
            num_elements: 6,
            subsets: vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![0, 5],
                vec![1, 4],
            ],
        }),
    }
}

/// Builds the same pool twice — kernel and scalar oracle — under an
/// optional interrupting terminator, and asserts cover and byte equality.
#[allow(clippy::too_many_arguments)]
fn assert_kernel_matches_scalar(
    g: &DiGraph,
    seeds: &[NodeId],
    k: usize,
    pool_seed: u64,
    threads: usize,
    target: u64,
    mode: FootprintMode,
    stop_at: Option<u64>,
) {
    let kernel_src = PrrFullSource::with_footprints(g, seeds, k, mode);
    let scalar_src = PrrFullSource::scalar_oracle(g, seeds, k, mode);

    let mut kernel_pool: SketchPool<PrrArenaShard> = SketchPool::new(pool_seed, threads);
    let mut scalar_pool: SketchPool<PrrArenaShard> = SketchPool::new(pool_seed, threads);
    let (ks, ss) = match stop_at {
        Some(c) => (
            kernel_pool.extend_to_within(&kernel_src, target, &StopAtChunk(c)),
            scalar_pool.extend_to_within(&scalar_src, target, &StopAtChunk(c)),
        ),
        None => (
            kernel_pool.extend_to_within(&kernel_src, target, &Unlimited),
            scalar_pool.extend_to_within(&scalar_src, target, &Unlimited),
        ),
    };
    assert_eq!(ks, ss, "extension status diverged");
    assert_eq!(kernel_pool.total_samples(), scalar_pool.total_samples());
    assert_eq!(kernel_pool.empty_samples(), scalar_pool.empty_samples());
    assert_eq!(
        kernel_pool.covers(),
        scalar_pool.covers(),
        "covers diverged"
    );

    let (_, kernel_shard, _, _) = kernel_pool.into_parts();
    let (_, scalar_shard, _, _) = scalar_pool.into_parts();
    // Arena equality compares every raw storage array, footprint columns
    // (node lists / bloom words) included.
    assert!(
        PrrArena::from_shard(kernel_shard) == PrrArena::from_shard(scalar_shard),
        "kernel arena diverged from scalar arena \
         (seed {pool_seed}, k {k}, {threads} threads, mode {mode:?}, stop {stop_at:?})"
    );
}

#[test]
fn interrupted_then_resumed_kernel_pool_equals_uninterrupted() {
    let g = build_graph(Family::Er, 11);
    let source = PrrFullSource::with_footprints(&g, &[NodeId(0)], 3, FootprintMode::Sorted);

    let mut straight: SketchPool<PrrArenaShard> = SketchPool::new(0xBEEF, 3);
    assert_eq!(
        straight.extend_to_within(&source, 4_000, &Unlimited),
        ExtendStatus::Completed
    );

    let mut resumed: SketchPool<PrrArenaShard> = SketchPool::new(0xBEEF, 3);
    assert_eq!(
        resumed.extend_to_within(&source, 4_000, &StopAtChunk(5)),
        ExtendStatus::Interrupted
    );
    assert!(resumed.total_samples() < 4_000);
    assert_eq!(
        resumed.extend_to_within(&source, 4_000, &Unlimited),
        ExtendStatus::Completed
    );

    assert_eq!(straight.total_samples(), resumed.total_samples());
    assert_eq!(straight.covers(), resumed.covers());
    let (_, straight_shard, _, _) = straight.into_parts();
    let (_, resumed_shard, _, _) = resumed.into_parts();
    assert!(
        PrrArena::from_shard(straight_shard) == PrrArena::from_shard(resumed_shard),
        "resumed pool diverged from uninterrupted pool"
    );
}

#[test]
fn lb_covers_match_scalar_oracle() {
    for family in [Family::Er, Family::Pa, Family::Gadget] {
        let g = build_graph(family, 7);
        let kernel_src = PrrLbSource::new(&g, &[NodeId(0)], 2);
        let scalar_src = PrrLbSource::scalar_oracle(&g, &[NodeId(0)], 2);
        for threads in [1usize, 7] {
            let mut kernel_pool: SketchPool<()> = SketchPool::new(99, threads);
            kernel_pool.extend_to(&kernel_src, 3_000);
            let mut scalar_pool: SketchPool<()> = SketchPool::new(99, threads);
            scalar_pool.extend_to(&scalar_src, 3_000);
            assert_eq!(kernel_pool.total_samples(), scalar_pool.total_samples());
            assert_eq!(
                kernel_pool.covers(),
                scalar_pool.covers(),
                "LB covers diverged ({family:?}, {threads} threads)"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Kernel ≡ scalar across graph families, thread counts, footprint
    /// modes, and random interruption points.
    #[test]
    fn kernel_matches_scalar_everywhere(
        family_ix in 0usize..3,
        graph_seed in 0u64..5_000,
        pool_seed in 0u64..5_000,
        k in 1usize..4,
        threads_ix in 0usize..2,
        mode_ix in 0usize..3,
        stop_raw in 0u64..6,
    ) {
        let family = [Family::Er, Family::Pa, Family::Gadget][family_ix];
        let mode = [
            FootprintMode::Off,
            FootprintMode::Sorted,
            FootprintMode::Bloom { bits: 64 },
        ][mode_ix];
        let threads = [1usize, 7][threads_ix];
        // 0 ⇒ run to completion; otherwise interrupt at chunk `stop_raw`.
        let stop = (stop_raw > 0).then_some(stop_raw);
        let g = build_graph(family, graph_seed);
        assert_kernel_matches_scalar(
            &g, &[NodeId(0)], k, pool_seed, threads, 1_500, mode, stop,
        );
    }
}
