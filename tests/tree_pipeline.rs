//! Tree-algorithm pipeline checks, including cross-validation of the tree
//! machinery against the general-graph machinery — a bidirected tree *is*
//! a directed graph, so PRR-Boost and the exact tree computation must tell
//! the same story.

use kboost::core::{prr_boost, BoostOptions};
use kboost::diffusion::monte_carlo::{estimate_sigma, McConfig};
use kboost::graph::generators::{complete_binary_tree, random_tree};
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::NodeId;
use kboost::tree::brute::brute_force_optimum;
use kboost::tree::exact::{tree_boost, tree_sigma};
use kboost::tree::{dp_boost, greedy_boost, BidirectedTree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn tree_sigma_matches_monte_carlo() {
    let mut rng = SmallRng::seed_from_u64(7);
    let topo = complete_binary_tree(63);
    let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.15), 2.0, &mut rng);
    let seeds = vec![NodeId(0), NodeId(10), NodeId(35)];
    let tree = BidirectedTree::from_digraph(&g, &seeds).unwrap();
    let boost = vec![NodeId(1), NodeId(4), NodeId(22)];

    let exact = tree_sigma(&tree, &boost);
    let mc = McConfig {
        runs: 150_000,
        threads: 4,
        seed: 13,
    };
    let sim = estimate_sigma(&g, &seeds, &boost, &mc);
    assert!(
        (exact - sim).abs() < 0.08,
        "tree exact σ {exact} vs Monte-Carlo {sim}"
    );
}

#[test]
fn prr_boost_and_greedy_boost_agree_on_trees() {
    // Run both algorithm families on the same tree; their solutions'
    // exact boosts should be close (both are near-optimal in practice).
    let mut rng = SmallRng::seed_from_u64(11);
    let topo = complete_binary_tree(63);
    let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.2), 2.0, &mut rng);
    let seeds = vec![NodeId(0)];
    let tree = BidirectedTree::from_digraph(&g, &seeds).unwrap();

    let k = 4;
    let greedy = greedy_boost(&tree, k);
    let opts = BoostOptions {
        threads: 2,
        seed: 3,
        min_sketches: 150_000,
        max_sketches: Some(250_000),
        ..Default::default()
    };
    let (prr, _) = prr_boost(&g, &seeds, k, &opts);
    let prr_exact = tree_boost(&tree, &prr.best);

    assert!(
        prr_exact >= 0.75 * greedy.boost,
        "PRR-Boost ({prr_exact}) far below tree greedy ({})",
        greedy.boost
    );
    assert!(
        greedy.boost >= 0.75 * prr_exact,
        "tree greedy ({}) far below PRR-Boost ({prr_exact})",
        greedy.boost
    );
}

#[test]
fn dp_guarantee_holds_against_bruteforce_across_topologies() {
    let mut rng = SmallRng::seed_from_u64(17);
    for trial in 0..8u64 {
        let n = 6 + (trial as usize % 3);
        let topo = random_tree(n, None, &mut rng);
        let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.3), 2.0, &mut rng);
        let seeds = vec![NodeId((trial % n as u64) as u32)];
        let tree = BidirectedTree::from_digraph(&g, &seeds).unwrap();
        let opt = brute_force_optimum(&tree, 2);
        for eps in [0.5, 0.25] {
            let dp = dp_boost(&tree, 2, eps);
            assert!(
                dp.boost >= (1.0 - eps) * opt.boost - 1e-9,
                "trial {trial} ε={eps}: DP {} < (1-ε)·OPT ({})",
                dp.boost,
                opt.boost
            );
            assert!(dp.boost <= opt.boost + 1e-9);
        }
    }
}

#[test]
fn greedy_is_monotone_in_k() {
    let mut rng = SmallRng::seed_from_u64(19);
    let topo = complete_binary_tree(31);
    let g = topo.into_bidirected_graph(ProbabilityModel::Trivalency, 2.0, &mut rng);
    let tree = BidirectedTree::from_digraph(&g, &[NodeId(0), NodeId(7)]).unwrap();
    let mut prev = 0.0;
    for k in [1, 2, 4, 8] {
        let out = greedy_boost(&tree, k);
        assert!(out.boost >= prev - 1e-12, "boost decreased at k={k}");
        prev = out.boost;
    }
}

#[test]
fn deeper_path_trees_work() {
    // A pure path exercises the iterative (non-recursive) passes.
    let mut rng = SmallRng::seed_from_u64(23);
    let topo = random_tree(400, Some(1), &mut rng); // path
    let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.3), 2.0, &mut rng);
    let tree = BidirectedTree::from_digraph(&g, &[NodeId(0)]).unwrap();
    let out = greedy_boost(&tree, 5);
    assert_eq!(out.boost_set.len(), 5);
    assert!(out.boost > 0.0);
    let dp = dp_boost(&tree, 3, 1.0);
    assert!(dp.boost >= 0.0);
    assert!(dp.boost_set.len() <= 3);
}
