//! Property-based tests spanning crates: invariants that must hold on
//! arbitrary random instances.

use kboost::diffusion::exact::{exact_boost, exact_sigma};
use kboost::diffusion::monte_carlo::{estimate_sigma, McConfig};
use kboost::graph::generators::random_tree;
use kboost::graph::io::{read_edge_list, write_edge_list};
use kboost::graph::probability::{boost_probability, ProbabilityModel};
use kboost::graph::{DiGraph, GraphBuilder, NodeId};
use kboost::tree::exact::tree_sigma;
use kboost::tree::BidirectedTree;
use proptest::prelude::*;

/// Strategy: a random small directed graph (n ≤ 7, m ≤ 10) with valid
/// probability pairs.
fn small_graph() -> impl Strategy<Value = DiGraph> {
    let edge = (0u32..7, 0u32..7, 0.0f64..1.0, 0.0f64..1.0);
    proptest::collection::vec(edge, 0..10).prop_map(|edges| {
        // Deduplicate (u, v) pairs and drop self-loops before building.
        let mut dedup = std::collections::BTreeMap::new();
        for (u, v, p, extra) in edges {
            if u != v {
                dedup.entry((u, v)).or_insert((p, p + (1.0 - p) * extra));
            }
        }
        let mut b = GraphBuilder::new(7);
        for ((u, v), (p, pb)) in dedup {
            b.add_edge(NodeId(u), NodeId(v), p, pb.min(1.0)).unwrap();
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sigma_bounds_and_monotonicity(g in small_graph(), seed in 0u32..7, extra in 0u32..7) {
        prop_assume!(g.num_edges() <= 10);
        let seeds = [NodeId(seed)];
        let base = exact_sigma(&g, &seeds, &[]);
        // σ is at least the seed count and at most n.
        prop_assert!(base >= 1.0 - 1e-12);
        prop_assert!(base <= 7.0 + 1e-12);
        // Boosting any single node can only help.
        let boosted = exact_sigma(&g, &seeds, &[NodeId(extra)]);
        prop_assert!(boosted + 1e-12 >= base);
        // Δ is consistent.
        let delta = exact_boost(&g, &seeds, &[NodeId(extra)]);
        prop_assert!((delta - (boosted - base)).abs() < 1e-12);
    }

    #[test]
    fn boost_probability_is_valid_and_monotone(p in 0.0f64..1.0, beta in 1.0f64..8.0) {
        let b = boost_probability(p, beta);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(b + 1e-12 >= p);
        // Monotone in beta.
        let b2 = boost_probability(p, beta + 1.0);
        prop_assert!(b2 + 1e-12 >= b);
    }

    #[test]
    fn edge_list_round_trip(g in small_graph()) {
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g.num_nodes(), g2.num_nodes());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for (u, v, p) in g.edges() {
            let q = g2.edge(u, v).unwrap();
            prop_assert!((p.base - q.base).abs() < 1e-12);
            prop_assert!((p.boosted - q.boosted).abs() < 1e-12);
        }
    }

    #[test]
    fn tree_exact_matches_enumeration(topo_seed in 0u64..500, seed_node in 0u32..6, boost_node in 0u32..6) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(topo_seed);
        let topo = random_tree(6, None, &mut rng);
        let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.3), 2.0, &mut rng);
        let seeds = [NodeId(seed_node)];
        let tree = BidirectedTree::from_digraph(&g, &seeds).unwrap();
        let boost = [NodeId(boost_node)];
        let fast = tree_sigma(&tree, &boost);
        let slow = exact_sigma(&g, &seeds, &boost);
        prop_assert!((fast - slow).abs() < 1e-9, "tree {fast} vs enumeration {slow}");
    }

    #[test]
    fn mc_estimate_within_tolerance(edge_p in 0.05f64..0.6) {
        // Two-node graph: σ({0}) = 1 + p exactly.
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), edge_p, boost_probability(edge_p, 2.0)).unwrap();
        let g = b.build().unwrap();
        let mc = McConfig { runs: 40_000, threads: 2, seed: 9 };
        let est = estimate_sigma(&g, &[NodeId(0)], &[], &mc);
        prop_assert!((est - (1.0 + edge_p)).abs() < 0.02, "est {est} vs {}", 1.0 + edge_p);
    }
}
