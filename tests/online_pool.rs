//! The online maintenance subsystem's equivalence and determinism
//! contracts, end to end:
//!
//! * after **any** mutation sequence, under **every** staleness rule
//!   (approximate node tables; exact sorted, compressed, bloom and
//!   hybrid footprints; trace-retention conditional replay), the
//!   incrementally maintained pool's compacted arena
//!   is **byte-equal** to the naive replay oracle
//!   (`rebuild_from_history`: legacy per-graph payloads, full per-sample
//!   scans, eager filtering — no tombstones, no inverted index), its
//!   `Δ̂` / `µ̂` estimates agree exactly, and the greedy selection picks
//!   the identical set;
//! * the maintained pool is **thread-count invariant**: 1 worker and 7
//!   workers produce the bit-identical arena (tombstones included) and
//!   identical epoch reports;
//! * exact mode closes the approximate rule's under-detection: the
//!   zero-drift regression pins `incremental == rebuild` down to the
//!   estimates and selection, and the companion test pins that the
//!   approximate rule still under-detects (and that the gap is visible
//!   through the exact machinery);
//! * SSA's validation pool retains covers only — the arena bytes the old
//!   shard-typed validation pool would have held are measured and
//!   asserted gone;
//! * **fault injection**: epochs whose refresh is cancelled or panics at
//!   a randomly chosen chunk boundary roll back to the byte-identical
//!   pre-epoch arena, the identical batch retried afterwards converges
//!   to the `rebuild_from_history` oracle, and deterministic faults are
//!   thread-count invariant.

use kboost::graph::generators::{erdos_renyi, set_cover_gadget, SetCoverInstance};
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::{DiGraph, EdgeProbs, NodeId};
use kboost::online::{
    rebuild_from_history, EpochBatch, InterruptCause, MaintainerOptions, OnlineError,
    PoolMaintainer, Staleness,
};
use kboost::prr::greedy_delta_selection;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Every staleness rule, as proptest draws them: the node-table
/// heuristic, all four exact footprint tiers, and the trace-retention
/// tier whose refresh is a conditional replay instead of a redraw.
const STALENESS_MODES: [Staleness; 6] = [
    Staleness::Approximate,
    Staleness::Exact,
    Staleness::ExactBloom { bits: 128 },
    Staleness::ExactCompressed,
    Staleness::ExactHybrid { bloom_above: 4 },
    Staleness::ExactTrace,
];

fn er_graph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi(n, m, ProbabilityModel::Constant(0.3), 2.0, &mut rng)
}

fn gadget() -> DiGraph {
    set_cover_gadget(&SetCoverInstance {
        num_elements: 6,
        subsets: vec![
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4, 5],
            vec![0, 5],
            vec![1, 4],
        ],
    })
}

/// Draws a random mutation history over `g`'s node universe: probability
/// updates and removals of random existing edges, insertions of random
/// non-self-loop pairs.
fn random_history(g: &DiGraph, epochs: usize, rng: &mut SmallRng) -> Vec<EpochBatch> {
    let n = g.num_nodes() as u32;
    let mut log = kboost::online::MutationLog::new();
    let mut history = Vec::with_capacity(epochs);
    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    for _ in 0..epochs {
        for _ in 0..rng.random_range(0..4usize) {
            match rng.random_range(0..3u32) {
                0 if !edges.is_empty() => {
                    // Probability update of an existing edge.
                    let (u, v) = edges[rng.random_range(0..edges.len())];
                    let p: f64 = rng.random_range(0.0..0.5);
                    let pb: f64 = p + rng.random_range(0.0..0.5);
                    log.set_probs(u, v, EdgeProbs::new(p, pb).unwrap());
                }
                1 if !edges.is_empty() => {
                    let (u, v) = edges[rng.random_range(0..edges.len())];
                    log.remove_edge(u, v);
                }
                _ => {
                    let u = rng.random_range(0..n);
                    let v = rng.random_range(0..n);
                    if u != v {
                        let p: f64 = rng.random_range(0.0..0.4);
                        log.insert_edge(
                            NodeId(u),
                            NodeId(v),
                            EdgeProbs::new(p, (p * 2.0).min(1.0)).unwrap(),
                        );
                    }
                }
            }
        }
        history.push(log.seal_epoch());
    }
    history
}

/// Runs the incremental maintainer over `history` and asserts it matches
/// the from-scratch replay oracle at the final epoch: byte-equal live
/// arena, equal counters, equal estimates, equal greedy selection.
fn assert_incremental_matches_rebuild(
    g0: &DiGraph,
    seeds: &[NodeId],
    opts: MaintainerOptions,
    history: &[EpochBatch],
) -> PoolMaintainer {
    let mut m = PoolMaintainer::build(g0.clone(), seeds.to_vec(), opts).unwrap();
    for batch in history {
        let report = m.apply_epoch(batch).unwrap();
        assert_eq!(report.invalidated, report.drawn_stored + report.drawn_empty);
        if !opts.staleness.is_exact() {
            assert_eq!(report.invalidated_empty, 0);
        }
    }
    assert_eq!(m.pool().total_samples(), opts.target_samples);

    let (g_oracle, oracle) = rebuild_from_history(g0, seeds, &opts, history);
    assert_eq!(g_oracle.num_edges(), m.graph().num_edges());
    assert_eq!(oracle.total_samples(), m.pool().total_samples());
    assert_eq!(oracle.empty_samples(), m.pool().empty_samples());
    assert_eq!(oracle.num_boostable(), m.pool().num_boostable());
    assert!(
        m.pool().arena().compacted() == *oracle.arena(),
        "incremental live arena diverged from the replay rebuild \
         (threshold {}, {} epochs)",
        opts.compact_threshold,
        history.len()
    );
    for set in [
        vec![NodeId(1)],
        vec![NodeId(2), NodeId(3)],
        (0..g0.num_nodes() as u32).map(NodeId).take(4).collect(),
    ] {
        assert_eq!(m.pool().delta_hat(&set), oracle.delta_hat(&set));
        assert_eq!(m.pool().mu_hat(&set), oracle.mu_hat(&set));
    }
    let k = opts.k;
    assert_eq!(
        m.select(k),
        greedy_delta_selection(oracle.arena(), g0.num_nodes(), k, opts.threads),
        "greedy selection diverged from the rebuild oracle"
    );
    m
}

#[test]
fn maintained_pool_thread_invariant_bytes_and_reports() {
    let g = er_graph(60, 300, 5);
    let seeds = [NodeId(0), NodeId(1)];
    let mut rng = SmallRng::seed_from_u64(0xD15EA5E);
    let history = random_history(&g, 4, &mut rng);
    for staleness in STALENESS_MODES {
        let opts = |threads: usize| MaintainerOptions {
            target_samples: 6_000,
            k: 3,
            threads,
            base_seed: 0xA11CE,
            compact_threshold: 0.2,
            staleness,
        };

        let mut reference = PoolMaintainer::build(g.clone(), seeds.to_vec(), opts(1)).unwrap();
        let reference_reports: Vec<_> = history
            .iter()
            .map(|b| reference.apply_epoch(b).unwrap())
            .collect();
        assert!(
            reference_reports.iter().any(|r| r.invalidated > 0),
            "degenerate history: nothing ever invalidated ({staleness:?})"
        );

        for threads in [2usize, 7] {
            let mut m = PoolMaintainer::build(g.clone(), seeds.to_vec(), opts(threads)).unwrap();
            let reports: Vec<_> = history.iter().map(|b| m.apply_epoch(b).unwrap()).collect();
            assert_eq!(
                reports, reference_reports,
                "reports differ at {threads} threads ({staleness:?})"
            );
            assert!(
                m.pool().arena() == reference.pool().arena(),
                "arena bytes (tombstones included) differ at {threads} threads ({staleness:?})"
            );
            assert_eq!(m.pool().total_samples(), reference.pool().total_samples());
            assert_eq!(m.select(3), reference.select(3));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Incremental maintenance ≡ from-scratch replay on random ER pools,
    /// across budgets, thread counts, compaction thresholds and mutation
    /// histories.
    #[test]
    fn incremental_matches_rebuild_on_er(
        graph_seed in 0u64..5_000,
        mutation_seed in 0u64..5_000,
        pool_seed in 0u64..5_000,
        k in 1usize..4,
        threads in 1usize..8,
        epochs in 1usize..4,
        threshold in 0u32..3,
        staleness in 0usize..6,
    ) {
        let g = er_graph(14, 40, graph_seed);
        let mut rng = SmallRng::seed_from_u64(mutation_seed);
        let history = random_history(&g, epochs, &mut rng);
        let opts = MaintainerOptions {
            target_samples: 600,
            k,
            threads,
            base_seed: pool_seed,
            compact_threshold: [0.0, 0.3, 1.0][threshold as usize],
            staleness: STALENESS_MODES[staleness],
        };
        assert_incremental_matches_rebuild(&g, &[NodeId(0)], opts, &history);
    }

    /// Same equivalence on the set-cover gadget (deep PRR-graphs with
    /// large critical sets).
    #[test]
    fn incremental_matches_rebuild_on_gadget(
        mutation_seed in 0u64..5_000,
        pool_seed in 0u64..5_000,
        k in 1usize..4,
        threads in 1usize..5,
        epochs in 1usize..3,
        staleness in 0usize..6,
    ) {
        let g = gadget();
        let mut rng = SmallRng::seed_from_u64(mutation_seed);
        let history = random_history(&g, epochs, &mut rng);
        let opts = MaintainerOptions {
            target_samples: 800,
            k,
            threads,
            base_seed: pool_seed,
            compact_threshold: 0.25,
            staleness: STALENESS_MODES[staleness],
        };
        assert_incremental_matches_rebuild(&g, &[NodeId(0)], opts, &history);
    }
}

#[test]
fn ssa_validation_pool_no_longer_retains_an_arena() {
    use kboost::prr::{PrrArenaShard, PrrFullSource};
    use kboost::rrset::sketch::SketchPool;
    use kboost::rrset::ssa::{run_ssa, SsaParams};

    let g = er_graph(40, 200, 9);
    let source = PrrFullSource::new(&g, &[NodeId(0)], 2);
    let params = SsaParams {
        k: 2,
        epsilon: 0.4,
        initial: 1_000,
        max_sketches: 40_000,
        threads: 2,
        seed: 77,
    };
    let run = run_ssa(&source, &params);
    assert!(run.validation.total_samples() > 0);

    // Reconstruct what the old shard-typed validation pool retained: an
    // arena it never evaluated a single graph from. Those bytes must be
    // real (the counterfactual is non-trivial) and no longer held — the
    // validation pool's shard is the unit shard, covers are all it keeps.
    // Pool contents depend on the *sequence* of targets, so replay SSA's
    // doubling schedule rather than one big extend.
    let mut old_style: SketchPool<PrrArenaShard> =
        SketchPool::new(params.seed ^ 0xDEAD_BEEF, params.threads);
    let mut target = params.initial.max(16);
    for _ in 0..run.epochs {
        old_style.extend_to(&source, target);
        target *= 2;
    }
    assert_eq!(old_style.total_samples(), run.validation.total_samples());
    assert_eq!(old_style.covers(), run.validation.covers());
    let arena_bytes = old_style.shard().memory_bytes();
    assert!(
        arena_bytes > 0,
        "counterfactual arena is empty — degenerate test"
    );
    let old_retained = old_style.cover_memory_bytes() + arena_bytes;
    let new_retained = run.validation.cover_memory_bytes();
    assert!(
        new_retained < old_retained,
        "retained validation memory did not drop: {new_retained} vs {old_retained}"
    );
}

/// The incrementally maintained invalidation index (CSR base + appended
/// tail, dead graphs filtered at query time, rebuilt only on compaction)
/// answers `stale_graphs` byte-equal to a from-scratch scan over the
/// live arena — at every point of a mutation history, for probe batches
/// it has never applied.
#[test]
fn stale_graphs_cached_index_matches_fresh_scan() {
    use kboost::online::Mutation;

    // Brute-force staleness: scan every live graph's whole node table.
    fn fresh_scan(m: &PoolMaintainer, mutations: &[Mutation]) -> Vec<u32> {
        let n = m.graph().num_nodes();
        let mut touched = vec![false; n];
        for mu in mutations {
            let (u, v) = mu.endpoints();
            touched[u.index()] = true;
            touched[v.index()] = true;
        }
        let arena = m.pool().arena();
        (0..arena.len() as u32)
            .filter(|&gi| {
                if !arena.is_live(gi as usize) {
                    return false;
                }
                let view = arena.graph(gi as usize);
                (0..view.num_nodes() as u32)
                    .any(|l| view.global_of(l).is_some_and(|g| touched[g.index()]))
            })
            .collect()
    }

    let g = er_graph(30, 140, 13);
    let seeds = [NodeId(0)];
    let mut rng = SmallRng::seed_from_u64(0x1DE7_5EED);
    // Exercise both compaction regimes: eager (index rebuilt per epoch)
    // and never (index serves from base + growing tail with tombstones).
    for threshold in [0.0, 1.0] {
        let opts = MaintainerOptions {
            target_samples: 3_000,
            k: 2,
            threads: 2,
            base_seed: 0xCAB,
            compact_threshold: threshold,
            staleness: Staleness::Approximate,
        };
        let mut m = PoolMaintainer::build(g.clone(), seeds.to_vec(), opts).unwrap();
        let history = random_history(&g, 5, &mut rng);
        // Probe batches the maintainer never applies — pure dry runs.
        let probes: Vec<Vec<Mutation>> = vec![
            vec![],
            vec![Mutation::Remove {
                from: NodeId(1),
                to: NodeId(2),
            }],
            (0..6u32)
                .map(|v| Mutation::Remove {
                    from: NodeId(v),
                    to: NodeId(v + 1),
                })
                .collect(),
        ];
        let mut compacted_any = false;
        let mut tombstoned_any = false;
        for batch in &history {
            for probe in &probes {
                assert_eq!(
                    m.stale_graphs(probe),
                    fresh_scan(&m, probe),
                    "cached index diverged (threshold {threshold}, epoch {})",
                    m.epoch()
                );
            }
            let report = m.apply_epoch(batch).unwrap();
            compacted_any |= report.compacted;
            tombstoned_any |= report.dead_graphs > 0 || report.invalidated > 0;
            for probe in &probes {
                assert_eq!(
                    m.stale_graphs(probe),
                    fresh_scan(&m, probe),
                    "cached index diverged after epoch {} (threshold {threshold})",
                    m.epoch()
                );
            }
        }
        // The history must have exercised the interesting transitions.
        assert!(tombstoned_any, "degenerate history: nothing invalidated");
        if threshold == 0.0 {
            assert!(compacted_any, "eager threshold never compacted");
        }
    }
}

/// Exact-mode zero-drift regression: over random mutation histories the
/// exact incremental pool equals `rebuild_from_history` **exactly** —
/// not just byte-equal live arenas, but bit-identical `Δ̂`/`µ̂` on probe
/// sets and the identical greedy selection, with drift computed the way
/// `exp_online` records it and asserted to be exactly `0.0`.
#[test]
fn exact_mode_zero_drift_over_random_histories() {
    for (graph_seed, pool_seed, mutation_seed) in [(3u64, 11u64, 7u64), (21, 5, 40), (64, 9, 2)] {
        let g = er_graph(30, 120, graph_seed);
        let mut rng = SmallRng::seed_from_u64(mutation_seed);
        let history = random_history(&g, 5, &mut rng);
        let opts = MaintainerOptions {
            target_samples: 4_000,
            k: 3,
            threads: 2,
            base_seed: pool_seed,
            compact_threshold: 0.25,
            staleness: Staleness::Exact,
        };
        let mut m = PoolMaintainer::build(g.clone(), vec![NodeId(0)], opts).unwrap();
        for batch in &history {
            m.apply_epoch(batch).unwrap();
        }
        let (_g, rebuilt) = rebuild_from_history(&g, &[NodeId(0)], &opts, &history);
        let probes: Vec<Vec<NodeId>> = vec![
            vec![NodeId(1)],
            vec![NodeId(5), NodeId(9)],
            (1..=3u32).map(NodeId).collect(),
        ];
        for probe in &probes {
            let drift = (m.pool().delta_hat(probe) - rebuilt.delta_hat(probe)).abs();
            assert_eq!(drift, 0.0, "Δ̂ drift on probe {probe:?} (seed {graph_seed})");
            let mu_drift = (m.pool().mu_hat(probe) - rebuilt.mu_hat(probe)).abs();
            assert_eq!(mu_drift, 0.0, "µ̂ drift on probe {probe:?}");
        }
        assert_eq!(
            m.select(3),
            greedy_delta_selection(rebuilt.arena(), g.num_nodes(), 3, opts.threads)
        );
        assert_eq!(m.pool().total_samples(), rebuilt.total_samples());
        assert_eq!(m.pool().empty_samples(), rebuilt.empty_samples());
    }
}

/// Companion regression: the approximate rule's under-detection is still
/// present, detected, and reported. Seed → x (live) → root (boost-only)
/// compresses `x` out of every stored node table, so removing the live
/// edge is invisible to the approximate rule — its report says nothing
/// was invalidated and its `Δ̂` keeps paying out on an unreachable root,
/// while the exact-mode maintainer (and its replay oracle) refresh to
/// the truth.
#[test]
fn approximate_under_detection_is_detected_and_reported() {
    use kboost::graph::GraphBuilder;
    use kboost::online::MutationLog;

    let graph = || {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        b.build().unwrap()
    };
    let opts = |staleness: Staleness| MaintainerOptions {
        target_samples: 1_200,
        k: 1,
        threads: 2,
        base_seed: 0xFACE,
        compact_threshold: 0.25,
        staleness,
    };
    let mut log = MutationLog::new();
    log.remove_edge(NodeId(0), NodeId(1));
    let batch = log.seal_epoch();

    let mut approx =
        PoolMaintainer::build(graph(), vec![NodeId(0)], opts(Staleness::Approximate)).unwrap();
    let report = approx.apply_epoch(&batch).unwrap();
    assert_eq!(report.invalidated, 0, "approximate rule must miss this");
    let stale_delta = approx.pool().delta_hat(&[NodeId(2)]);
    assert!(stale_delta > 0.0, "stale pool keeps paying out");

    for staleness in [Staleness::Exact, Staleness::ExactBloom { bits: 128 }] {
        let mut exact = PoolMaintainer::build(graph(), vec![NodeId(0)], opts(staleness)).unwrap();
        let report = exact.apply_epoch(&batch).unwrap();
        assert!(report.invalidated > 0, "{staleness:?} must detect");
        assert!(
            report.invalidated_empty > 0,
            "{staleness:?} refreshes empties"
        );
        assert_eq!(exact.pool().delta_hat(&[NodeId(2)]), 0.0, "exact truth");

        // The drift of the approximate pool is real and measurable
        // against the exact replay — the number `exp_online` records.
        let o = opts(staleness);
        let (_g, rebuilt) =
            rebuild_from_history(&graph(), &[NodeId(0)], &o, std::slice::from_ref(&batch));
        let drift = (stale_delta - rebuilt.delta_hat(&[NodeId(2)])).abs();
        assert!(
            drift > 0.0,
            "under-detection must show as drift vs the exact rebuild"
        );
    }
}

/// The footprint-exactness invariant at the sample level: if a sample's
/// footprint avoids a mutation's head, regenerating it from the same RNG
/// seed over the *mutated* graph reproduces the sample bit for bit — the
/// retained sample *is* what resampling would have produced, which is
/// precisely why exact staleness may keep it. Checked for removals,
/// probability updates and insertions over many random graphs and seeds.
#[test]
fn footprint_soundness_unaffected_samples_reproduce_bitwise() {
    use kboost::online::{apply_mutations, Mutation};
    use kboost::prr::{PrrArena, PrrGenerator, PrrOutcome};

    let mut checked = 0usize;
    for graph_seed in 0..12u64 {
        let g = er_graph(12, 30, 1000 + graph_seed);
        let generator = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        for sample_seed in 0..24u64 {
            let mut rng = SmallRng::seed_from_u64(sample_seed * 7 + 3);
            let mut fp = Vec::new();
            let outcome = generator.sample_with_footprint(&mut rng, &mut fp);

            // One mutation of each kind whose head the footprint avoids.
            let mut candidates: Vec<Mutation> = Vec::new();
            if let Some(&(u, v)) = edges.iter().find(|(_, v)| !fp.contains(&v.0)) {
                candidates.push(Mutation::Remove { from: u, to: v });
                candidates.push(Mutation::Upsert {
                    from: u,
                    to: v,
                    probs: EdgeProbs::new(0.45, 0.95).unwrap(),
                });
            }
            if let Some(v) = (0..12u32).find(|v| !fp.contains(v) && *v != 3) {
                candidates.push(Mutation::Upsert {
                    from: NodeId(3),
                    to: NodeId(v),
                    probs: EdgeProbs::new(0.3, 0.6).unwrap(),
                });
            }
            for mutation in candidates {
                if mutation.endpoints().0 == mutation.endpoints().1 {
                    continue;
                }
                let g2 = apply_mutations(&g, std::slice::from_ref(&mutation)).unwrap();
                let generator2 = PrrGenerator::new(&g2, &[NodeId(0)], 2);
                let mut rng2 = SmallRng::seed_from_u64(sample_seed * 7 + 3);
                let mut fp2 = Vec::new();
                let outcome2 = generator2.sample_with_footprint(&mut rng2, &mut fp2);
                assert_eq!(fp, fp2, "footprint changed (graph {graph_seed})");
                match (&outcome, &outcome2) {
                    (PrrOutcome::Activated, PrrOutcome::Activated)
                    | (PrrOutcome::Hopeless, PrrOutcome::Hopeless) => {}
                    (PrrOutcome::Boostable(a), PrrOutcome::Boostable(b)) => {
                        assert!(
                            PrrArena::from_graphs([a.clone()])
                                == PrrArena::from_graphs([b.clone()]),
                            "stored bytes changed under an unqueried mutation \
                             (graph {graph_seed}, sample {sample_seed})"
                        );
                    }
                    _ => panic!(
                        "outcome class changed under an unqueried mutation \
                         (graph {graph_seed}, sample {sample_seed})"
                    ),
                }
                checked += 1;
            }
        }
    }
    assert!(checked > 300, "degenerate: only {checked} pairs checked");
}

/// A mutation touching only nodes absent from every retained sample's
/// staleness trace is a documented no-op, not an error: the epoch
/// applies, nothing is invalidated or resampled, and the pool bytes are
/// untouched. (Out-of-range endpoints are the typed-error case —
/// `tests/engine_api.rs::engine_rejects_out_of_range_mutation_endpoints`.)
#[test]
fn mutation_on_untouched_nodes_invalidates_nothing() {
    use kboost::graph::GraphBuilder;
    use kboost::online::MutationLog;

    // Nodes 4 and 5 are disconnected from the seeded component, so no
    // sample's node table retains them; under the approximate rule even
    // their footprints are invisible.
    let mut b = GraphBuilder::new(6);
    b.add_edge(NodeId(0), NodeId(1), 0.4, 0.8).unwrap();
    b.add_edge(NodeId(1), NodeId(2), 0.3, 0.6).unwrap();
    let g = b.build().unwrap();
    let opts = MaintainerOptions {
        target_samples: 800,
        k: 2,
        threads: 2,
        base_seed: 0x10,
        compact_threshold: 0.25,
        staleness: Staleness::Approximate,
    };
    let mut m = PoolMaintainer::build(g, vec![NodeId(0)], opts).unwrap();
    let before = m.pool().arena().compacted();
    let (total, empties) = (m.pool().total_samples(), m.pool().empty_samples());

    let mut log = MutationLog::new();
    log.insert_edge(NodeId(4), NodeId(5), EdgeProbs::new(0.2, 0.4).unwrap());
    assert!(m.stale_graphs(log.pending()).is_empty());
    let report = m.apply_epoch(&log.seal_epoch()).unwrap();
    assert_eq!(report.invalidated, 0);
    assert_eq!(report.drawn_stored + report.drawn_empty, 0);
    assert!(m.pool().arena().compacted() == before, "pool bytes changed");
    assert_eq!(m.pool().total_samples(), total);
    assert_eq!(m.pool().empty_samples(), empties);
    // The new edge exists in the maintained graph regardless.
    assert!(m.graph().has_edge(NodeId(4), NodeId(5)));
}

/// The exact-rule incremental footprint indices (stored graphs *and*
/// empty samples) answer staleness byte-equal to brute-force scans over
/// the retained footprints — at every point of a mutation history, for
/// probe batches the maintainer never applies, across compaction
/// regimes.
#[test]
fn exact_stale_sets_match_fresh_footprint_scans() {
    use kboost::online::Mutation;

    fn fresh_scans(m: &PoolMaintainer, mutations: &[Mutation]) -> (Vec<u32>, Vec<u32>) {
        if mutations.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let mut head_hit = vec![false; m.graph().num_nodes()];
        for mu in mutations {
            head_hit[mu.endpoints().1.index()] = true;
        }
        let arena = m.pool().arena();
        let hit = |nodes: &[u32]| nodes.iter().any(|&v| head_hit[v as usize]);
        let graphs = (0..arena.len() as u32)
            .filter(|&gi| {
                arena.is_live(gi as usize)
                    && hit(arena.footprints().nodes(gi as usize).expect("sorted"))
            })
            .collect();
        let empties = (0..arena.num_empty_footprints() as u32)
            .filter(|&ei| {
                arena.empty_is_live(ei as usize)
                    && hit(arena.empty_footprints().nodes(ei as usize).expect("sorted"))
            })
            .collect();
        (graphs, empties)
    }

    let g = er_graph(30, 140, 17);
    let mut rng = SmallRng::seed_from_u64(0xF00D_5EED);
    for threshold in [0.0, 1.0] {
        let opts = MaintainerOptions {
            target_samples: 2_500,
            k: 2,
            threads: 2,
            base_seed: 0xBEE,
            compact_threshold: threshold,
            staleness: Staleness::Exact,
        };
        let mut m = PoolMaintainer::build(g.clone(), vec![NodeId(0)], opts).unwrap();
        let history = random_history(&g, 5, &mut rng);
        let probes: Vec<Vec<Mutation>> = vec![
            vec![],
            vec![Mutation::Remove {
                from: NodeId(1),
                to: NodeId(2),
            }],
            (0..6u32)
                .map(|v| Mutation::Remove {
                    from: NodeId(v),
                    to: NodeId(v + 1),
                })
                .collect(),
        ];
        for batch in &history {
            for probe in &probes {
                let (graphs, empties) = fresh_scans(&m, probe);
                assert_eq!(m.stale_graphs(probe), graphs, "graph index diverged");
                assert_eq!(
                    m.stale_empty_samples(probe),
                    empties,
                    "empty index diverged"
                );
            }
            m.apply_epoch(batch).unwrap();
            for probe in &probes {
                let (graphs, empties) = fresh_scans(&m, probe);
                assert_eq!(
                    m.stale_graphs(probe),
                    graphs,
                    "graph index diverged post-epoch"
                );
                assert_eq!(
                    m.stale_empty_samples(probe),
                    empties,
                    "empty index diverged post-epoch"
                );
            }
        }
    }
}

/// Applies `history` while injecting one fault per epoch (cancellation
/// or contained panic at chunk boundary `fault_chunk` of the refresh),
/// asserting the transactional contract at every step, then retrying
/// each interrupted epoch to completion. Returns the maintainer.
fn apply_history_with_faults(
    g: &DiGraph,
    opts: MaintainerOptions,
    history: &[EpochBatch],
    fault_chunk: u64,
    panic_instead: bool,
) -> PoolMaintainer {
    use kboost::rrset::terminator::{PanicAt, StopAtChunk};

    let mut m = PoolMaintainer::build(g.clone(), vec![NodeId(0)], opts).unwrap();
    for batch in history {
        let arena_before = m.pool().arena().clone();
        let epoch_before = m.epoch();
        let edges_before = m.graph().num_edges();
        let res = if panic_instead {
            m.apply_epoch_within(batch, &PanicAt(fault_chunk))
        } else {
            m.apply_epoch_within(batch, &StopAtChunk(fault_chunk))
        };
        match res {
            // The refresh finished (or was empty) before the fault chunk
            // was reached — a genuine commit.
            Ok(_) => assert_eq!(m.epoch(), epoch_before + 1),
            Err(OnlineError::Interrupted { epoch, cause }) => {
                assert_eq!(epoch, epoch_before + 1);
                assert_eq!(
                    cause,
                    if panic_instead {
                        InterruptCause::Panicked
                    } else {
                        InterruptCause::Cancelled
                    }
                );
                // Rollback: graph, epoch counter, and arena bytes are
                // exactly the pre-epoch state.
                assert_eq!(m.epoch(), epoch_before);
                assert_eq!(m.graph().num_edges(), edges_before);
                assert!(
                    *m.pool().arena() == arena_before,
                    "rollback left the arena not byte-identical"
                );
                // The identical batch retried verbatim must commit.
                m.apply_epoch(batch).unwrap();
                assert_eq!(m.epoch(), epoch_before + 1);
            }
            Err(e) => panic!("unexpected error from faulted epoch: {e}"),
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The transactional-epoch contract under randomly injected faults:
    /// over random graphs, mutation histories, staleness rules and
    /// thread counts, an epoch cancelled or panicked at a random chunk
    /// boundary rolls back byte-identically, and the post-fault retries
    /// converge to exactly the `rebuild_from_history` oracle — faults
    /// leave no trace in the final bytes, estimates, or selection.
    #[test]
    fn faulted_epochs_roll_back_and_retries_match_rebuild(
        graph_seed in 0u64..5_000,
        mutation_seed in 0u64..5_000,
        pool_seed in 0u64..5_000,
        threads in 1usize..8,
        epochs in 1usize..4,
        staleness in 0usize..6,
        fault_chunk in 0u64..3,
        panic_instead in (0u32..2).prop_map(|b| b == 1),
    ) {
        let g = er_graph(14, 40, graph_seed);
        let mut rng = SmallRng::seed_from_u64(mutation_seed);
        let history = random_history(&g, epochs, &mut rng);
        let opts = MaintainerOptions {
            target_samples: 600,
            k: 2,
            threads,
            base_seed: pool_seed,
            compact_threshold: 0.3,
            staleness: STALENESS_MODES[staleness],
        };
        let m = apply_history_with_faults(&g, opts, &history, fault_chunk, panic_instead);

        let (g_oracle, oracle) = rebuild_from_history(&g, &[NodeId(0)], &opts, &history);
        prop_assert_eq!(g_oracle.num_edges(), m.graph().num_edges());
        prop_assert_eq!(oracle.total_samples(), m.pool().total_samples());
        prop_assert_eq!(oracle.empty_samples(), m.pool().empty_samples());
        prop_assert!(
            m.pool().arena().compacted() == *oracle.arena(),
            "post-fault pool diverged from the never-faulted replay oracle"
        );
        for set in [vec![NodeId(1)], vec![NodeId(2), NodeId(3)]] {
            prop_assert_eq!(m.pool().delta_hat(&set), oracle.delta_hat(&set));
            prop_assert_eq!(m.pool().mu_hat(&set), oracle.mu_hat(&set));
        }
        prop_assert_eq!(
            m.select(2),
            greedy_delta_selection(oracle.arena(), g.num_nodes(), 2, opts.threads)
        );
    }
}

/// Deterministic faults (chunk-count cancellation) interrupt at the same
/// point regardless of worker count, so the whole faulted-then-retried
/// history is bit-identical between 1 and 7 threads.
#[test]
fn deterministic_faults_are_thread_invariant() {
    let g = er_graph(30, 140, 23);
    let mut rng = SmallRng::seed_from_u64(0xFA_017);
    let history = random_history(&g, 4, &mut rng);
    for staleness in STALENESS_MODES {
        let run = |threads: usize| {
            let opts = MaintainerOptions {
                target_samples: 3_000,
                k: 2,
                threads,
                base_seed: 0xFA_117,
                compact_threshold: 0.25,
                staleness,
            };
            apply_history_with_faults(&g, opts, &history, 0, false)
        };
        let reference = run(1);
        let wide = run(7);
        assert!(
            wide.pool().arena() == reference.pool().arena(),
            "faulted history not thread-invariant ({staleness:?})"
        );
        assert_eq!(
            wide.pool().total_samples(),
            reference.pool().total_samples()
        );
        assert_eq!(wide.select(2), reference.select(2));
    }
}
