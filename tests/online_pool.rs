//! The online maintenance subsystem's equivalence and determinism
//! contracts, end to end:
//!
//! * after **any** mutation sequence, the incrementally maintained pool's
//!   compacted arena is **byte-equal** to the naive replay oracle
//!   (`rebuild_from_history`: legacy per-graph payloads, full node-table
//!   scans, eager filtering — no tombstones, no inverted index), its
//!   `Δ̂` / `µ̂` estimates agree exactly, and the greedy selection picks
//!   the identical set;
//! * the maintained pool is **thread-count invariant**: 1 worker and 7
//!   workers produce the bit-identical arena (tombstones included) and
//!   identical epoch reports;
//! * SSA's validation pool retains covers only — the arena bytes the old
//!   shard-typed validation pool would have held are measured and
//!   asserted gone.

use kboost::graph::generators::{erdos_renyi, set_cover_gadget, SetCoverInstance};
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::{DiGraph, EdgeProbs, NodeId};
use kboost::online::{rebuild_from_history, EpochBatch, MaintainerOptions, PoolMaintainer};
use kboost::prr::greedy_delta_selection;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn er_graph(n: usize, m: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi(n, m, ProbabilityModel::Constant(0.3), 2.0, &mut rng)
}

fn gadget() -> DiGraph {
    set_cover_gadget(&SetCoverInstance {
        num_elements: 6,
        subsets: vec![
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4, 5],
            vec![0, 5],
            vec![1, 4],
        ],
    })
}

/// Draws a random mutation history over `g`'s node universe: probability
/// updates and removals of random existing edges, insertions of random
/// non-self-loop pairs.
fn random_history(g: &DiGraph, epochs: usize, rng: &mut SmallRng) -> Vec<EpochBatch> {
    let n = g.num_nodes() as u32;
    let mut log = kboost::online::MutationLog::new();
    let mut history = Vec::with_capacity(epochs);
    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    for _ in 0..epochs {
        for _ in 0..rng.random_range(0..4usize) {
            match rng.random_range(0..3u32) {
                0 if !edges.is_empty() => {
                    // Probability update of an existing edge.
                    let (u, v) = edges[rng.random_range(0..edges.len())];
                    let p: f64 = rng.random_range(0.0..0.5);
                    let pb: f64 = p + rng.random_range(0.0..0.5);
                    log.set_probs(u, v, EdgeProbs::new(p, pb).unwrap());
                }
                1 if !edges.is_empty() => {
                    let (u, v) = edges[rng.random_range(0..edges.len())];
                    log.remove_edge(u, v);
                }
                _ => {
                    let u = rng.random_range(0..n);
                    let v = rng.random_range(0..n);
                    if u != v {
                        let p: f64 = rng.random_range(0.0..0.4);
                        log.insert_edge(
                            NodeId(u),
                            NodeId(v),
                            EdgeProbs::new(p, (p * 2.0).min(1.0)).unwrap(),
                        );
                    }
                }
            }
        }
        history.push(log.seal_epoch());
    }
    history
}

/// Runs the incremental maintainer over `history` and asserts it matches
/// the from-scratch replay oracle at the final epoch: byte-equal live
/// arena, equal counters, equal estimates, equal greedy selection.
fn assert_incremental_matches_rebuild(
    g0: &DiGraph,
    seeds: &[NodeId],
    opts: MaintainerOptions,
    history: &[EpochBatch],
) -> PoolMaintainer {
    let mut m = PoolMaintainer::build(g0.clone(), seeds.to_vec(), opts);
    for batch in history {
        let report = m.apply_epoch(batch);
        assert_eq!(report.invalidated, report.drawn_stored + report.drawn_empty);
    }
    assert_eq!(m.pool().total_samples(), opts.target_samples);

    let (g_oracle, oracle) = rebuild_from_history(g0, seeds, &opts, history);
    assert_eq!(g_oracle.num_edges(), m.graph().num_edges());
    assert_eq!(oracle.total_samples(), m.pool().total_samples());
    assert_eq!(oracle.empty_samples(), m.pool().empty_samples());
    assert_eq!(oracle.num_boostable(), m.pool().num_boostable());
    assert!(
        m.pool().arena().compacted() == *oracle.arena(),
        "incremental live arena diverged from the replay rebuild \
         (threshold {}, {} epochs)",
        opts.compact_threshold,
        history.len()
    );
    for set in [
        vec![NodeId(1)],
        vec![NodeId(2), NodeId(3)],
        (0..g0.num_nodes() as u32).map(NodeId).take(4).collect(),
    ] {
        assert_eq!(m.pool().delta_hat(&set), oracle.delta_hat(&set));
        assert_eq!(m.pool().mu_hat(&set), oracle.mu_hat(&set));
    }
    let k = opts.k;
    assert_eq!(
        m.select(k),
        greedy_delta_selection(oracle.arena(), g0.num_nodes(), k, opts.threads),
        "greedy selection diverged from the rebuild oracle"
    );
    m
}

#[test]
fn maintained_pool_thread_invariant_bytes_and_reports() {
    let g = er_graph(60, 300, 5);
    let seeds = [NodeId(0), NodeId(1)];
    let mut rng = SmallRng::seed_from_u64(0xD15EA5E);
    let history = random_history(&g, 4, &mut rng);
    let opts = |threads: usize| MaintainerOptions {
        target_samples: 6_000,
        k: 3,
        threads,
        base_seed: 0xA11CE,
        compact_threshold: 0.2,
    };

    let mut reference = PoolMaintainer::build(g.clone(), seeds.to_vec(), opts(1));
    let reference_reports: Vec<_> = history.iter().map(|b| reference.apply_epoch(b)).collect();
    assert!(
        reference_reports.iter().any(|r| r.invalidated > 0),
        "degenerate history: nothing ever invalidated"
    );

    for threads in [2usize, 7] {
        let mut m = PoolMaintainer::build(g.clone(), seeds.to_vec(), opts(threads));
        let reports: Vec<_> = history.iter().map(|b| m.apply_epoch(b)).collect();
        assert_eq!(
            reports, reference_reports,
            "reports differ at {threads} threads"
        );
        assert!(
            m.pool().arena() == reference.pool().arena(),
            "arena bytes (tombstones included) differ at {threads} threads"
        );
        assert_eq!(m.pool().total_samples(), reference.pool().total_samples());
        assert_eq!(m.select(3), reference.select(3));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Incremental maintenance ≡ from-scratch replay on random ER pools,
    /// across budgets, thread counts, compaction thresholds and mutation
    /// histories.
    #[test]
    fn incremental_matches_rebuild_on_er(
        graph_seed in 0u64..5_000,
        mutation_seed in 0u64..5_000,
        pool_seed in 0u64..5_000,
        k in 1usize..4,
        threads in 1usize..8,
        epochs in 1usize..4,
        threshold in 0u32..3,
    ) {
        let g = er_graph(14, 40, graph_seed);
        let mut rng = SmallRng::seed_from_u64(mutation_seed);
        let history = random_history(&g, epochs, &mut rng);
        let opts = MaintainerOptions {
            target_samples: 600,
            k,
            threads,
            base_seed: pool_seed,
            compact_threshold: [0.0, 0.3, 1.0][threshold as usize],
        };
        assert_incremental_matches_rebuild(&g, &[NodeId(0)], opts, &history);
    }

    /// Same equivalence on the set-cover gadget (deep PRR-graphs with
    /// large critical sets).
    #[test]
    fn incremental_matches_rebuild_on_gadget(
        mutation_seed in 0u64..5_000,
        pool_seed in 0u64..5_000,
        k in 1usize..4,
        threads in 1usize..5,
        epochs in 1usize..3,
    ) {
        let g = gadget();
        let mut rng = SmallRng::seed_from_u64(mutation_seed);
        let history = random_history(&g, epochs, &mut rng);
        let opts = MaintainerOptions {
            target_samples: 800,
            k,
            threads,
            base_seed: pool_seed,
            compact_threshold: 0.25,
        };
        assert_incremental_matches_rebuild(&g, &[NodeId(0)], opts, &history);
    }
}

#[test]
fn ssa_validation_pool_no_longer_retains_an_arena() {
    use kboost::prr::{PrrArenaShard, PrrFullSource};
    use kboost::rrset::sketch::SketchPool;
    use kboost::rrset::ssa::{run_ssa, SsaParams};

    let g = er_graph(40, 200, 9);
    let source = PrrFullSource::new(&g, &[NodeId(0)], 2);
    let params = SsaParams {
        k: 2,
        epsilon: 0.4,
        initial: 1_000,
        max_sketches: 40_000,
        threads: 2,
        seed: 77,
    };
    let run = run_ssa(&source, &params);
    assert!(run.validation.total_samples() > 0);

    // Reconstruct what the old shard-typed validation pool retained: an
    // arena it never evaluated a single graph from. Those bytes must be
    // real (the counterfactual is non-trivial) and no longer held — the
    // validation pool's shard is the unit shard, covers are all it keeps.
    // Pool contents depend on the *sequence* of targets, so replay SSA's
    // doubling schedule rather than one big extend.
    let mut old_style: SketchPool<PrrArenaShard> =
        SketchPool::new(params.seed ^ 0xDEAD_BEEF, params.threads);
    let mut target = params.initial.max(16);
    for _ in 0..run.epochs {
        old_style.extend_to(&source, target);
        target *= 2;
    }
    assert_eq!(old_style.total_samples(), run.validation.total_samples());
    assert_eq!(old_style.covers(), run.validation.covers());
    let arena_bytes = old_style.shard().memory_bytes();
    assert!(
        arena_bytes > 0,
        "counterfactual arena is empty — degenerate test"
    );
    let old_retained = old_style.cover_memory_bytes() + arena_bytes;
    let new_retained = run.validation.cover_memory_bytes();
    assert!(
        new_retained < old_retained,
        "retained validation memory did not drop: {new_retained} vs {old_retained}"
    );
}

/// The incrementally maintained invalidation index (CSR base + appended
/// tail, dead graphs filtered at query time, rebuilt only on compaction)
/// answers `stale_graphs` byte-equal to a from-scratch scan over the
/// live arena — at every point of a mutation history, for probe batches
/// it has never applied.
#[test]
fn stale_graphs_cached_index_matches_fresh_scan() {
    use kboost::online::Mutation;

    // Brute-force staleness: scan every live graph's whole node table.
    fn fresh_scan(m: &PoolMaintainer, mutations: &[Mutation]) -> Vec<u32> {
        let n = m.graph().num_nodes();
        let mut touched = vec![false; n];
        for mu in mutations {
            let (u, v) = mu.endpoints();
            touched[u.index()] = true;
            touched[v.index()] = true;
        }
        let arena = m.pool().arena();
        (0..arena.len() as u32)
            .filter(|&gi| {
                if !arena.is_live(gi as usize) {
                    return false;
                }
                let view = arena.graph(gi as usize);
                (0..view.num_nodes() as u32)
                    .any(|l| view.global_of(l).is_some_and(|g| touched[g.index()]))
            })
            .collect()
    }

    let g = er_graph(30, 140, 13);
    let seeds = [NodeId(0)];
    let mut rng = SmallRng::seed_from_u64(0x1DE7_5EED);
    // Exercise both compaction regimes: eager (index rebuilt per epoch)
    // and never (index serves from base + growing tail with tombstones).
    for threshold in [0.0, 1.0] {
        let opts = MaintainerOptions {
            target_samples: 3_000,
            k: 2,
            threads: 2,
            base_seed: 0xCAB,
            compact_threshold: threshold,
        };
        let mut m = PoolMaintainer::build(g.clone(), seeds.to_vec(), opts);
        let history = random_history(&g, 5, &mut rng);
        // Probe batches the maintainer never applies — pure dry runs.
        let probes: Vec<Vec<Mutation>> = vec![
            vec![],
            vec![Mutation::Remove {
                from: NodeId(1),
                to: NodeId(2),
            }],
            (0..6u32)
                .map(|v| Mutation::Remove {
                    from: NodeId(v),
                    to: NodeId(v + 1),
                })
                .collect(),
        ];
        let mut compacted_any = false;
        let mut tombstoned_any = false;
        for batch in &history {
            for probe in &probes {
                assert_eq!(
                    m.stale_graphs(probe),
                    fresh_scan(&m, probe),
                    "cached index diverged (threshold {threshold}, epoch {})",
                    m.epoch()
                );
            }
            let report = m.apply_epoch(batch);
            compacted_any |= report.compacted;
            tombstoned_any |= report.dead_graphs > 0 || report.invalidated > 0;
            for probe in &probes {
                assert_eq!(
                    m.stale_graphs(probe),
                    fresh_scan(&m, probe),
                    "cached index diverged after epoch {} (threshold {threshold})",
                    m.epoch()
                );
            }
        }
        // The history must have exercised the interesting transitions.
        assert!(tombstoned_any, "degenerate history: nothing invalidated");
        if threshold == 0.0 {
            assert!(compacted_any, "eager threshold never compacted");
        }
    }
}
