//! End-to-end checks on the set-cover gadget of Appendix A (Figure 16) —
//! a graph where the effect of boosting is known analytically.

use kboost::core::{prr_boost, BoostOptions};
use kboost::diffusion::monte_carlo::{estimate_sigma, McConfig};
use kboost::graph::generators::{set_cover_gadget, SetCoverInstance};
use kboost::graph::NodeId;

fn figure16() -> SetCoverInstance {
    SetCoverInstance {
        num_elements: 6,
        subsets: vec![vec![0, 1, 2], vec![1, 2, 3], vec![3, 4, 5]],
    }
}

#[test]
fn boosting_a_cover_activates_all_elements() {
    // Boosting k set-nodes of a cover: the k boosted set-nodes activate
    // surely, the remaining m−k with probability 0.5, and *every* element
    // activates surely. σ = 1 + k + (m−k)/2 + n.
    let inst = figure16();
    let g = set_cover_gadget(&inst);
    let seeds = [NodeId(0)];
    let cover = vec![inst.set_node(0), inst.set_node(2)]; // C1 ∪ C3 = X
    let mc = McConfig {
        runs: 60_000,
        threads: 4,
        seed: 3,
    };
    let sigma = estimate_sigma(&g, &seeds, &cover, &mc);
    let expected = 1.0 + 2.0 + 0.5 + 6.0;
    assert!(
        (sigma - expected).abs() < 0.05,
        "cover σ = {sigma}, expected {expected}"
    );
    // A non-cover leaves some element below certainty, so σ is strictly
    // smaller.
    let non_cover = vec![inst.set_node(0), inst.set_node(1)]; // misses x5, x6
    let sigma2 = estimate_sigma(&g, &seeds, &non_cover, &mc);
    assert!(sigma2 < expected - 0.3, "non-cover σ = {sigma2}");
}

#[test]
fn prr_boost_finds_a_cover() {
    // With k = 2, the optimal boost set is exactly a minimum set cover
    // ({C1, C3}); PRR-Boost should find it.
    let inst = figure16();
    let g = set_cover_gadget(&inst);
    let seeds = [NodeId(0)];
    let opts = BoostOptions {
        threads: 2,
        seed: 17,
        min_sketches: 100_000,
        max_sketches: Some(200_000),
        ..Default::default()
    };
    let (out, _) = prr_boost(&g, &seeds, 2, &opts);
    let chosen: Vec<usize> = out
        .best
        .iter()
        .filter_map(|&v| (1..=3).find(|&i| inst.set_node(i - 1) == v).map(|i| i - 1))
        .collect();
    assert_eq!(
        chosen.len(),
        2,
        "both picks should be set-nodes: {:?}",
        out.best
    );
    assert!(
        inst.is_cover(&chosen),
        "picked sets {chosen:?} are not a cover"
    );
}

#[test]
fn element_nodes_are_never_worth_boosting() {
    // Element nodes have deterministic in-edges (p = p' = 1): boosting
    // them gains nothing, so no algorithm should pick them.
    let inst = figure16();
    let g = set_cover_gadget(&inst);
    let seeds = [NodeId(0)];
    let opts = BoostOptions {
        threads: 2,
        seed: 19,
        min_sketches: 60_000,
        max_sketches: Some(120_000),
        ..Default::default()
    };
    let (out, _) = prr_boost(&g, &seeds, 3, &opts);
    for j in 0..inst.num_elements {
        assert!(
            !out.best.contains(&inst.element_node(j)),
            "element node {j} boosted: {:?}",
            out.best
        );
    }
}
