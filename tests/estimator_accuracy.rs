//! Statistical end-to-end accuracy of the **engine's** estimator
//! pipeline against the `kboost-diffusion` ground truths — the missing
//! link between the sketch machinery and the simulators it is supposed
//! to reproduce.
//!
//! Every assertion runs at a fixed seed (so a pass is reproducible, not
//! flaky) with a tolerance *derived from the sample count* instead of a
//! magic constant: `Δ̂ = n · hits/T` with `hits ~ Binomial(T, Δ/n)`, so
//! `sd(Δ̂) = n·√(p(1−p)/T) ≤ n/(2√T)` and a 4σ band is `2n/√T`. The
//! Monte-Carlo references get the same treatment over their run counts,
//! and the two bands add.
//!
//! The suite covers the offline engine (`Δ̂` vs the exact enumerator and
//! the coupled Monte-Carlo simulator, `µ̂` vs the µ-model simulator, on
//! ER instances and the set-cover gadget) **and** the online engine,
//! where it is precise about what exact staleness does and does not
//! buy:
//!
//! * when a batch invalidates **every** randomness-dependent sample, the
//!   refreshed pool is a fresh pool and must hit the mutated graph's
//!   true `Δ` within the band (validates the epoch-seeded refresh
//!   sampler end to end);
//! * under **partial** churn the maintained pool equals its
//!   from-scratch exact replay bit-for-bit (zero drift — the PR's
//!   contract), but refresh-by-full-redraw does *not* reproduce a fresh
//!   pool's distribution: invalidated slots are conditionally different
//!   from average (their traces queried the mutated region) and the
//!   redraw is unconditioned. The residual gap is pinned here as an
//!   executable regression for the redraw tiers, and the fix —
//!   conditional coin reuse, [`Staleness::ExactTrace`] — is asserted
//!   *positively* on the same history: the trace-replayed pool hits the
//!   mutated graph's truth within the sampling band where the redraw
//!   pool is measurably skewed.

use kboost::diffusion::exact::exact_boost;
use kboost::diffusion::monte_carlo::{estimate_boost, McConfig};
use kboost::diffusion::mu_model::estimate_mu;
use kboost::engine::{EngineBuilder, MutationLog, Sampling, Staleness};
use kboost::graph::generators::{erdos_renyi, set_cover_gadget, SetCoverInstance};
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::{DiGraph, EdgeProbs, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// 4σ band of the pool estimator `n · Binomial(T, p)/T`.
fn pool_tolerance(n: usize, samples: u64) -> f64 {
    2.0 * n as f64 / (samples as f64).sqrt()
}

/// 4σ band of a mean of `runs` simulator outcomes valued in `[0, n]`.
fn mc_tolerance(n: usize, runs: u32) -> f64 {
    2.0 * n as f64 / (runs as f64).sqrt()
}

/// A small ER instance with few enough edges for the exact enumerator.
fn er(seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi(12, 16, ProbabilityModel::Constant(0.3), 2.0, &mut rng)
}

const SAMPLES: u64 = 120_000;

fn fixed_engine(g: &DiGraph, seeds: &[NodeId], k: usize, seed: u64) -> kboost::engine::Engine {
    EngineBuilder::new(g.clone())
        .seeds(seeds.to_vec())
        .k(k)
        .threads(2)
        .seed(seed)
        .sampling(Sampling::Fixed { samples: SAMPLES })
        .build()
        .expect("valid configuration")
}

#[test]
fn engine_delta_hat_matches_exact_and_monte_carlo_on_er() {
    let mc = McConfig {
        runs: 150_000,
        threads: 2,
        seed: 9,
    };
    for graph_seed in [2u64, 15, 33] {
        let g = er(graph_seed);
        let seeds = [NodeId(0)];
        let mut engine = fixed_engine(&g, &seeds, 2, 0xACC0 + graph_seed);
        for probe in [vec![NodeId(3)], vec![NodeId(5), NodeId(7)]] {
            let est = engine.delta_hat(&probe).expect("pool built");
            let truth = exact_boost(&g, &seeds, &probe);
            let tol = pool_tolerance(g.num_nodes(), SAMPLES);
            assert!(
                (est - truth).abs() <= tol,
                "graph {graph_seed} B={probe:?}: Δ̂ {est} vs exact {truth} (tol {tol})"
            );
            let sim = estimate_boost(&g, &seeds, &probe, &mc);
            let tol = tol + mc_tolerance(g.num_nodes(), mc.runs);
            assert!(
                (est - sim).abs() <= tol,
                "graph {graph_seed} B={probe:?}: Δ̂ {est} vs MC {sim} (tol {tol})"
            );
        }
    }
}

#[test]
fn engine_mu_hat_matches_mu_model_on_er() {
    for graph_seed in [4u64, 27] {
        let g = er(graph_seed);
        let seeds = [NodeId(0), NodeId(1)];
        let mut engine = fixed_engine(&g, &seeds, 2, 0xB00 + graph_seed);
        for probe in [vec![NodeId(4)], vec![NodeId(4), NodeId(6)]] {
            let (delta, mu) = engine.evaluate(&probe).expect("pool built");
            let runs = 150_000u32;
            let sim = estimate_mu(&g, &seeds, &probe, runs, 77);
            let tol = pool_tolerance(g.num_nodes(), SAMPLES) + mc_tolerance(g.num_nodes(), runs);
            assert!(
                (mu - sim).abs() <= tol,
                "graph {graph_seed} B={probe:?}: µ̂ {mu} vs µ-model {sim} (tol {tol})"
            );
            // The sandwich order must hold on the same pool.
            assert!(mu <= delta + 1e-12, "µ̂ {mu} > Δ̂ {delta}");
        }
    }
}

#[test]
fn engine_delta_hat_matches_exact_on_gadget() {
    // The set-cover gadget: deep PRR-graphs, known-by-construction
    // optimum, 17 edges — still exactly enumerable.
    let instance = SetCoverInstance {
        num_elements: 6,
        subsets: vec![
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4, 5],
            vec![0, 5],
            vec![1, 4],
        ],
    };
    let g = set_cover_gadget(&instance);
    let seeds = [NodeId(0)];
    let mut engine = fixed_engine(&g, &seeds, 3, 0x6AD6E7);
    let cover: Vec<NodeId> = [0usize, 2, 4]
        .iter()
        .map(|&i| instance.set_node(i))
        .collect();
    let single = vec![instance.set_node(1)];
    for probe in [cover, single] {
        let est = engine.delta_hat(&probe).expect("pool built");
        let truth = exact_boost(&g, &seeds, &probe);
        let tol = pool_tolerance(g.num_nodes(), SAMPLES);
        assert!(
            (est - truth).abs() <= tol,
            "gadget B={probe:?}: Δ̂ {est} vs exact {truth} (tol {tol})"
        );
    }
}

/// Full-churn epoch: every non-seed node gets a new in-edge, so every
/// sample whose generation consumed randomness (its footprint contains
/// at least its root) is invalidated and redrawn from the epoch stream —
/// the only samples retained are seed-rooted `Activated` empties, whose
/// value is a constant under any edge set. The refreshed pool is
/// therefore distributed exactly like a fresh pool over the mutated
/// graph, and the engine's `Δ̂` must hit the exact enumerator within the
/// sampling band. This exercises epoch seeding, shard absorption,
/// empty-sample bookkeeping and the denominator accounting end to end.
#[test]
fn full_churn_refresh_is_statistically_fresh() {
    for graph_seed in [8u64, 19] {
        let mut rng = SmallRng::seed_from_u64(graph_seed);
        // 10 nodes / 12 edges: with 9 insertions the mutated graph stays
        // within the exact enumerator's 25-edge budget.
        let g0 = erdos_renyi(10, 12, ProbabilityModel::Constant(0.3), 2.0, &mut rng);
        let seeds = [NodeId(0)];
        let mut engine = EngineBuilder::new(g0.clone())
            .seeds(seeds.to_vec())
            .k(2)
            .threads(2)
            .seed(0xF1E1D + graph_seed)
            .sampling(Sampling::Fixed { samples: SAMPLES })
            .staleness(Staleness::Exact)
            .build()
            .expect("valid configuration");
        engine.pool().expect("pool built");

        let n = g0.num_nodes() as u32;
        let mut log = MutationLog::new();
        for v in 1..n {
            // Head coverage of every non-seed node invalidates every
            // root-expanding sample; tiny probabilities keep the graph
            // recognizable.
            let u = if v == 1 { n - 1 } else { v - 1 };
            log.insert_edge(NodeId(u), NodeId(v), EdgeProbs::new(0.02, 0.04).unwrap());
        }
        let report = engine.apply_mutations(&log.seal_epoch()).expect("epoch 1");
        let retained = SAMPLES - report.invalidated;
        assert!(
            report.invalidated_empty > 0 && retained < SAMPLES / 4,
            "churn construction failed: only {} of {SAMPLES} invalidated",
            report.invalidated
        );

        let mutated = engine.graph().clone();
        assert!(mutated.num_edges() <= 25);
        for probe in [vec![NodeId(3)], vec![NodeId(2), NodeId(5)]] {
            let est = engine.delta_hat(&probe).expect("pool built");
            let truth = exact_boost(&mutated, &seeds, &probe);
            let tol = pool_tolerance(mutated.num_nodes(), SAMPLES);
            assert!(
                (est - truth).abs() <= tol,
                "graph {graph_seed} B={probe:?}: refreshed Δ̂ {est} vs exact {truth} \
                 on the mutated graph (tol {tol})"
            );
        }
    }
}

/// Partial-churn pin for the **redraw** tiers: exact staleness makes the
/// maintained pool equal its from-scratch exact replay **bit for bit**
/// (the zero-drift contract), but it is *not* distribution-fresh — the
/// invalidated slots' traces queried the mutated region, so their
/// conditional `f`-law differs from average and the unconditioned redraw
/// skews the pool where probes overlap mutation sites. This regression
/// pins both facts at fixed seeds so the redraw tiers' documented
/// limitation stays measured (the fresh engine is accurate on the same
/// graph, ruling out a sampler bug as the explanation). The trace tier
/// closes the gap — `partial_churn_trace_replay_is_distribution_fresh`
/// asserts the positive counterpart on the identical history.
#[test]
fn partial_churn_zero_replay_drift_but_not_distribution_fresh() {
    let graph_seed = 19u64;
    let g0 = er(graph_seed);
    let seeds = [NodeId(0)];
    let build = |g: &DiGraph, staleness, seed: u64| {
        EngineBuilder::new(g.clone())
            .seeds(seeds.to_vec())
            .k(2)
            .threads(2)
            .seed(seed)
            .sampling(Sampling::Fixed { samples: SAMPLES })
            .staleness(staleness)
            .build()
            .expect("valid configuration")
    };
    let mut engine = build(&g0, Staleness::Exact, 0xF1E1D + graph_seed);

    // Churn overlapping the probe: node 2 gains an in-edge, so most
    // samples that made boosting 2 pay off are invalidated.
    let edges: Vec<(NodeId, NodeId, EdgeProbs)> = g0.edges().collect();
    let mut log = MutationLog::new();
    let (u, v, _) = edges[0];
    log.set_probs(u, v, EdgeProbs::new(0.45, 0.9).unwrap());
    let (u, v, _) = edges[edges.len() / 2];
    log.remove_edge(u, v);
    let b1 = log.seal_epoch();
    log.insert_edge(NodeId(9), NodeId(2), EdgeProbs::new(0.35, 0.7).unwrap());
    let (u, v, _) = edges[1];
    log.set_probs(u, v, EdgeProbs::new(0.05, 0.1).unwrap());
    let b2 = log.seal_epoch();
    engine.apply_mutations(&b1).expect("epoch 1");
    let report = engine.apply_mutations(&b2).expect("epoch 2");
    assert!(
        report.invalidated > 0 && report.invalidated < SAMPLES / 2,
        "pin needs partial churn, got {}/{SAMPLES}",
        report.invalidated
    );

    let mutated = engine.graph().clone();
    let probe = vec![NodeId(2), NodeId(5)];
    let est = engine.delta_hat(&probe).expect("pool built");
    let truth = exact_boost(&mutated, &seeds, &probe);
    let tol = pool_tolerance(mutated.num_nodes(), SAMPLES);

    // Fact 1 — zero drift vs the deterministic ground truth: the exact
    // replay of the same history lands on the identical estimate.
    let opts = kboost::online::MaintainerOptions {
        target_samples: SAMPLES,
        k: 2,
        threads: 2,
        base_seed: 0xF1E1D + graph_seed,
        compact_threshold: 0.25,
        staleness: kboost::online::Staleness::Exact,
    };
    let (_g, replay) = kboost::online::rebuild_from_history(&g0, &seeds, &opts, &[b1, b2]);
    assert_eq!(est, replay.delta_hat(&probe), "replay drift must be zero");

    // Fact 2 — a fresh pool on the mutated graph is accurate...
    let mut fresh = build(&mutated, Staleness::Approximate, 0x0F5E5);
    let fresh_est = fresh.delta_hat(&probe).expect("pool built");
    assert!(
        (fresh_est - truth).abs() <= tol,
        "fresh Δ̂ {fresh_est} vs exact {truth} (tol {tol}) — sampler broken?"
    );
    // ...while the maintained pool is measurably skewed on this probe:
    // the known redraw-conditioning limitation, kept visible on purpose.
    assert!(
        (est - truth).abs() > tol,
        "maintained Δ̂ {est} unexpectedly within {tol} of {truth}: the redraw \
         tiers' conditioning skew vanished — re-derive this pin's seeds"
    );
}

/// The positive counterpart of the redraw pin, on the **identical**
/// history: under [`Staleness::ExactTrace`] the invalidated samples are
/// conditionally replayed — untouched coins reused, only mutated coins
/// redrawn — so by deferred decisions the maintained pool is an exact
/// draw from the new graph's PRR distribution, jointly with the
/// untouched survivors. The estimate must therefore hit the mutated
/// graph's exact `Δ` within the sampling band (where the redraw pool is
/// pinned *outside* it), while the bit-for-bit zero-drift contract
/// against the trace replay oracle still holds.
#[test]
fn partial_churn_trace_replay_is_distribution_fresh() {
    let graph_seed = 19u64;
    let g0 = er(graph_seed);
    let seeds = [NodeId(0)];
    let mut engine = EngineBuilder::new(g0.clone())
        .seeds(seeds.to_vec())
        .k(2)
        .threads(2)
        .seed(0xF1E1D + graph_seed)
        .sampling(Sampling::Fixed { samples: SAMPLES })
        .staleness(Staleness::ExactTrace)
        .build()
        .expect("valid configuration");

    // The same two batches as the redraw pin.
    let edges: Vec<(NodeId, NodeId, EdgeProbs)> = g0.edges().collect();
    let mut log = MutationLog::new();
    let (u, v, _) = edges[0];
    log.set_probs(u, v, EdgeProbs::new(0.45, 0.9).unwrap());
    let (u, v, _) = edges[edges.len() / 2];
    log.remove_edge(u, v);
    let b1 = log.seal_epoch();
    log.insert_edge(NodeId(9), NodeId(2), EdgeProbs::new(0.35, 0.7).unwrap());
    let (u, v, _) = edges[1];
    log.set_probs(u, v, EdgeProbs::new(0.05, 0.1).unwrap());
    let b2 = log.seal_epoch();
    engine.apply_mutations(&b1).expect("epoch 1");
    let report = engine.apply_mutations(&b2).expect("epoch 2");
    assert!(
        report.invalidated > 0 && report.invalidated < SAMPLES / 2,
        "freshness assert needs partial churn, got {}/{SAMPLES}",
        report.invalidated
    );

    let mutated = engine.graph().clone();
    let probe = vec![NodeId(2), NodeId(5)];
    let est = engine.delta_hat(&probe).expect("pool built");
    let truth = exact_boost(&mutated, &seeds, &probe);
    let tol = pool_tolerance(mutated.num_nodes(), SAMPLES);
    assert!(
        (est - truth).abs() <= tol,
        "trace-replayed Δ̂ {est} vs exact {truth} (tol {tol}): conditional \
         replay must be distribution-fresh under partial churn"
    );

    // The zero-drift contract holds for the trace tier too: the replay
    // oracle reproduces the maintained estimate exactly.
    let opts = kboost::online::MaintainerOptions {
        target_samples: SAMPLES,
        k: 2,
        threads: 2,
        base_seed: 0xF1E1D + graph_seed,
        compact_threshold: 0.25,
        staleness: kboost::online::Staleness::ExactTrace,
    };
    let (_g, replay) = kboost::online::rebuild_from_history(&g0, &seeds, &opts, &[b1, b2]);
    assert_eq!(est, replay.delta_hat(&probe), "replay drift must be zero");
}
