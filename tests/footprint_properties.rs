//! Property suites for the footprint storage tiers and the staleness
//! queries built on them:
//!
//! * **Round-trip / byte-canonicalization** — on arbitrary footprint
//!   sets, every decodable column tier (sorted, compressed, trace)
//!   decodes back to exactly what was pushed; the compressed tiers never
//!   spend more bytes than sorted storage; and a column assembled
//!   through the full arena lifecycle — shard pushes, chunk-order
//!   `absorb`, tombstoning, order-preserving compaction — is
//!   **byte-equal** to a column freshly pushed with only the survivors,
//!   in every mode (the interning dictionary re-canonicalizes on
//!   compaction, so storage history never leaks into the bytes).
//! * **Staleness-query agreement** — over ER, preferential-attachment
//!   and set-cover-gadget pools, every decodable exact tier answers
//!   `stale_graphs` / `stale_empty_samples` identically to the sorted
//!   ground truth, the fingerprint tiers (bloom, hybrid) answer with
//!   supersets (never-miss), and every answer is invariant between 1 and
//!   7 worker threads.

use kboost::graph::generators::{
    erdos_renyi, preferential_attachment, set_cover_gadget, SetCoverInstance,
};
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::{DiGraph, EdgeProbs, NodeId};
use kboost::online::{MaintainerOptions, Mutation, PoolMaintainer, Staleness};
use kboost::prr::{FootprintColumn, FootprintMode, FootprintQuery};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Node universe of the column properties.
const N: usize = 64;

/// Every storage mode a column can run in (Off excluded: it stores
/// nothing and has nothing to round-trip).
const MODES: [FootprintMode; 5] = [
    FootprintMode::Sorted,
    FootprintMode::Bloom { bits: 128 },
    FootprintMode::Compressed,
    FootprintMode::Hybrid { bloom_above: 4 },
    FootprintMode::Trace,
];

/// Strategy: a batch of canonical (sorted, deduplicated) footprints over
/// `0..N`, lengths 0..=16.
fn footprints() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..N as u32, 0..17).prop_map(|v| {
            let set: std::collections::BTreeSet<u32> = v.into_iter().collect();
            set.into_iter().collect::<Vec<u32>>()
        }),
        1..24,
    )
}

/// A deterministic per-entry trace blob (content is opaque to the
/// column; it must survive absorb/compact byte-for-byte).
fn fake_trace(i: usize, nodes: &[u32]) -> Vec<u8> {
    let mut t = vec![i as u8, nodes.len() as u8];
    t.extend(nodes.iter().map(|&v| v as u8));
    t
}

/// Builds a column of `mode` holding `entries`, traces attached in trace
/// mode.
fn build_column(mode: FootprintMode, entries: &[Vec<u32>]) -> FootprintColumn {
    let mut col = FootprintColumn::new(mode);
    for (i, nodes) in entries.iter().enumerate() {
        if mode.retains_trace() {
            col.push_with_trace(nodes, &fake_trace(i, nodes));
        } else {
            col.push(nodes);
        }
    }
    col
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decodable tiers round-trip exactly; compressed storage never
    /// exceeds sorted storage; trace sidecars come back verbatim.
    #[test]
    fn decodable_columns_round_trip_and_compress(entries in footprints()) {
        let sorted = build_column(FootprintMode::Sorted, &entries);
        for mode in [FootprintMode::Sorted, FootprintMode::Compressed, FootprintMode::Trace] {
            let col = build_column(mode, &entries);
            prop_assert_eq!(col.count(), entries.len());
            for (i, nodes) in entries.iter().enumerate() {
                let mut decoded = Vec::new();
                col.for_each_node(i, |v| decoded.push(v));
                prop_assert_eq!(&decoded, nodes, "round-trip failed in {:?}", mode);
                if mode.retains_trace() {
                    prop_assert_eq!(col.trace(i), &fake_trace(i, nodes)[..]);
                }
            }
        }
        // The interner charges a fixed bookkeeping constant per unique
        // footprint (entry id + dictionary offset + accel-map slot), so
        // on tiny all-unique batches compressed storage may trail sorted
        // by that constant — but never by more.  The strict payload win
        // at realistic scale is `compression_wins_at_scale` below.
        let compressed = build_column(FootprintMode::Compressed, &entries);
        prop_assert!(
            compressed.memory_bytes() <= sorted.memory_bytes() + 36 * entries.len() + 16,
            "compressed ({}) exceeds sorted ({}) by more than per-entry bookkeeping",
            compressed.memory_bytes(),
            sorted.memory_bytes()
        );
    }

    /// The full storage lifecycle is byte-canonical in every mode: a
    /// column built as `push* ; absorb(shard) ; compacted(keep)` equals
    /// the column freshly pushed with only the kept entries — offsets,
    /// payload bytes, interning dictionary, trace sidecars and all.
    #[test]
    fn absorb_then_compact_is_byte_canonical(
        entries in footprints(),
        split in 0usize..24,
        keep_seed in 0u64..1_000,
    ) {
        let split = split.min(entries.len());
        let mut rng = SmallRng::seed_from_u64(keep_seed);
        let keep: Vec<bool> = (0..entries.len()).map(|_| rng.random::<f64>() < 0.6).collect();
        for mode in MODES {
            // Main column absorbs a later shard (chunk-order merge)...
            let mut col = build_column(mode, &entries[..split]);
            let later = {
                let mut shard = FootprintColumn::new(mode);
                for (i, nodes) in entries.iter().enumerate().skip(split) {
                    if mode.retains_trace() {
                        shard.push_with_trace(nodes, &fake_trace(i, nodes));
                    } else {
                        shard.push(nodes);
                    }
                }
                shard
            };
            col.absorb(&later);
            // ...then compacts to the kept subset.
            let compacted = col.compacted(|i| keep[i]);

            // Reference: push exactly the survivors into a fresh column,
            // preserving their original trace blobs.
            let mut reference = FootprintColumn::new(mode);
            for (i, nodes) in entries.iter().enumerate() {
                if keep[i] {
                    if mode.retains_trace() {
                        reference.push_with_trace(nodes, &fake_trace(i, nodes));
                    } else {
                        reference.push(nodes);
                    }
                }
            }
            prop_assert!(
                compacted == reference,
                "absorb+compact not byte-canonical in {:?}", mode
            );
        }
    }

    /// Query agreement at the raw-column level: on every entry, the
    /// decodable tiers' `matches` verdict equals the ground-truth
    /// intersection test, and the fingerprint tiers never answer `false`
    /// when the truth is `true` (never-miss).
    #[test]
    fn column_queries_agree_with_ground_truth(
        entries in footprints(),
        heads in proptest::collection::vec(0u32..N as u32, 1..6),
    ) {
        let heads: Vec<u32> = {
            let set: std::collections::BTreeSet<u32> = heads.into_iter().collect();
            set.into_iter().collect()
        };
        for mode in MODES {
            let col = build_column(mode, &entries);
            let q = col.query(&heads, N);
            for (i, nodes) in entries.iter().enumerate() {
                let truth = nodes.iter().any(|v| heads.contains(v));
                let got = col.matches(&q, i);
                if mode.is_decodable() {
                    prop_assert_eq!(got, truth, "exact tier {:?} wrong on entry {}", mode, i);
                } else {
                    prop_assert!(got || !truth, "{:?} missed a stale entry", mode);
                }
                // The raw (column-free) verdict the replay oracle uses
                // must agree with the column's own.
                let raw_q = FootprintQuery::new(mode, &heads, N);
                prop_assert_eq!(
                    FootprintColumn::raw_matches(mode, nodes, &raw_q),
                    got,
                    "raw_matches diverged from column matches in {:?}", mode
                );
            }
        }
    }
}

/// At PRR-pool scale footprints repeat heavily (many samples share the
/// same compressed frontier), and the interning dictionary turns that
/// repetition into a strict byte win over sorted storage.
#[test]
fn compression_wins_at_scale() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE);
    let unique: Vec<Vec<u32>> = (0..96)
        .map(|_| {
            let len = rng.random_range(12usize..32);
            let mut set = std::collections::BTreeSet::new();
            while set.len() < len {
                set.insert(rng.random_range(0..N as u32));
            }
            set.into_iter().collect()
        })
        .collect();
    let entries: Vec<Vec<u32>> = (0..1500)
        .map(|_| unique[rng.random_range(0..unique.len())].clone())
        .collect();
    let sorted = build_column(FootprintMode::Sorted, &entries);
    let compressed = build_column(FootprintMode::Compressed, &entries);
    assert!(
        compressed.memory_bytes() < sorted.memory_bytes() / 4,
        "interned column ({}) should be far below sorted ({}) at scale",
        compressed.memory_bytes(),
        sorted.memory_bytes()
    );
}

/// The three pool families the staleness-query agreement runs over.
fn pool_graphs() -> Vec<(&'static str, DiGraph)> {
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    let er = erdos_renyi(24, 90, ProbabilityModel::Constant(0.3), 2.0, &mut rng);
    let pa = preferential_attachment(24, 3, 0.3, ProbabilityModel::Constant(0.25), 2.0, &mut rng);
    let gadget = set_cover_gadget(&SetCoverInstance {
        num_elements: 6,
        subsets: vec![
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4, 5],
            vec![0, 5],
            vec![1, 4],
        ],
    });
    vec![("er", er), ("pa", pa), ("gadget", gadget)]
}

/// A probe batch touching a few random heads of `g` (existing edges and
/// one fresh insertion), for staleness dry runs.
fn probe_batch(g: &DiGraph, seed: u64) -> Vec<Mutation> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    let mut batch = Vec::new();
    for _ in 0..3 {
        let (u, v) = edges[rng.random_range(0..edges.len())];
        if rng.random::<bool>() {
            batch.push(Mutation::Remove { from: u, to: v });
        } else {
            batch.push(Mutation::Upsert {
                from: u,
                to: v,
                probs: EdgeProbs::new(0.1, 0.5).unwrap(),
            });
        }
    }
    let n = g.num_nodes() as u32;
    let (u, v) = (rng.random_range(0..n), rng.random_range(0..n));
    if u != v {
        batch.push(Mutation::Upsert {
            from: NodeId(u),
            to: NodeId(v),
            probs: EdgeProbs::new(0.2, 0.4).unwrap(),
        });
    }
    batch
}

/// Staleness dry runs agree across storage tiers and thread counts on
/// every pool family: decodable exact tiers equal the sorted ground
/// truth exactly, fingerprint tiers return supersets, and no answer
/// depends on the worker count.
#[test]
fn staleness_queries_agree_across_modes_and_threads() {
    let exact_tiers = [Staleness::ExactCompressed, Staleness::ExactTrace];
    let fingerprint_tiers = [
        Staleness::ExactBloom { bits: 128 },
        Staleness::ExactHybrid { bloom_above: 4 },
    ];
    for (name, g) in pool_graphs() {
        let opts = |staleness: Staleness, threads: usize| MaintainerOptions {
            target_samples: 800,
            k: 2,
            threads,
            base_seed: 0xBEEF,
            compact_threshold: 0.25,
            staleness,
        };
        let build = |staleness: Staleness, threads: usize| {
            PoolMaintainer::build(g.clone(), vec![NodeId(0)], opts(staleness, threads)).unwrap()
        };
        let mut truth = build(Staleness::Exact, 1);
        for batch_seed in [1u64, 7, 42] {
            let batch = probe_batch(&g, batch_seed);
            let want = (
                truth.stale_graphs(&batch),
                truth.stale_empty_samples(&batch),
            );
            assert!(
                !want.0.is_empty() || !want.1.is_empty(),
                "{name}: degenerate probe batch {batch_seed}"
            );
            for staleness in exact_tiers {
                for threads in [1usize, 7] {
                    let mut m = build(staleness, threads);
                    assert_eq!(
                        (m.stale_graphs(&batch), m.stale_empty_samples(&batch)),
                        want,
                        "{name}: {staleness:?}@{threads}t diverged from sorted truth"
                    );
                }
            }
            for staleness in fingerprint_tiers {
                for threads in [1usize, 7] {
                    let mut m = build(staleness, threads);
                    let got = (m.stale_graphs(&batch), m.stale_empty_samples(&batch));
                    let superset = |sup: &[u32], sub: &[u32]| {
                        let s: std::collections::HashSet<u32> = sup.iter().copied().collect();
                        sub.iter().all(|i| s.contains(i))
                    };
                    assert!(
                        superset(&got.0, &want.0) && superset(&got.1, &want.1),
                        "{name}: {staleness:?}@{threads}t missed a stale sample"
                    );
                    // Fingerprint verdicts are deterministic, so the 1-
                    // and 7-thread answers must also be identical.
                    let mut again = build(staleness, 1);
                    assert_eq!(
                        got,
                        (
                            again.stale_graphs(&batch),
                            again.stale_empty_samples(&batch)
                        ),
                        "{name}: {staleness:?} thread-variant answer"
                    );
                }
            }
        }
    }
}
