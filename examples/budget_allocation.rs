//! Budget allocation between seeding and boosting (Section V-D /
//! Figure 13), through the engine's validated scenario API.
//!
//! Suppose nurturing one initial adopter costs as much as boosting 100
//! potential customers. For several budget splits, pick seeds with IMM and
//! boosts with PRR-Boost-LB, then score the combination by simulation.
//!
//! Run with: `cargo run --release --example budget_allocation`

use kboost::datasets::{Dataset, Scale};
use kboost::diffusion::monte_carlo::McConfig;
use kboost::engine::scenario::{budget_sweep, BudgetPlan};

fn main() {
    println!("generating a Flixster-like network (scaled down)...");
    let g = Dataset::Flixster.generate(Scale::Tiny, 2.0, 7);
    println!("n = {}, m = {}", g.num_nodes(), g.num_edges());

    let plan = BudgetPlan {
        max_seeds: 20,
        cost_ratio: 100,
        epsilon: 0.5,
        threads: 4,
        boost_seed: 11,
        seeding_seed: 12,
        max_sketches: Some(300_000),
        min_sketches: 20_000,
        mc: McConfig::quick(3_000, 13),
    };

    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    println!("\nseed-budget fraction → boosted influence (cost ratio 100:1)");
    let points = budget_sweep(&g, &fractions, &plan).expect("valid budget plan");
    let mut best = &points[0];
    for p in &points {
        println!(
            "  {:>4.0}%  seeds={:<3} boosts={:<5} σ = {:8.1}",
            p.seed_fraction * 100.0,
            p.num_seeds,
            p.num_boosts,
            p.sigma
        );
        if p.sigma > best.sigma {
            best = p;
        }
    }
    println!(
        "\nbest split: {:.0}% seeding ({} seeds + {} boosts) → σ = {:.1}",
        best.seed_fraction * 100.0,
        best.num_seeds,
        best.num_boosts,
        best.sigma
    );
    println!("(the paper's Figure 13 shows mixed budgets beating pure seeding)");
}
