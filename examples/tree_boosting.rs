//! Boosting on bidirected trees: Greedy-Boost vs the DP-Boost FPTAS
//! (Section VI / VIII), through the engine's `TreeExact` algorithm.
//!
//! Builds a complete binary tree with Trivalency probabilities (the
//! paper's tree workload), selects seeds, and compares the greedy
//! algorithm against the near-optimal dynamic program at several ε —
//! both dispatched through the same `BoostAlgorithm` interface as
//! PRR-Boost and the baselines.
//!
//! Run with: `cargo run --release --example tree_boosting`

use kboost::engine::{Algorithm, EngineBuilder};
use kboost::graph::generators::complete_binary_tree;
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::NodeId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 127;
    let k = 8;
    let mut rng = SmallRng::seed_from_u64(5);
    let topo = complete_binary_tree(n);
    let g = topo.into_bidirected_graph(ProbabilityModel::Trivalency, 2.0, &mut rng);
    // A few scattered seeds.
    let seeds: Vec<NodeId> = [0u32, 13, 40, 77, 101].map(NodeId).to_vec();

    let mut engine = EngineBuilder::new(g)
        .seeds(seeds)
        .k(k)
        .build()
        .expect("valid engine configuration");

    let greedy = engine
        .solve(&Algorithm::TreeExact { dp_epsilon: None })
        .expect("the graph is a bidirected tree");
    let greedy_boost = greedy.delta_hat.unwrap();
    println!(
        "Greedy-Boost: boost = {:.4} in {:.2?} (set {:?})",
        greedy_boost,
        std::time::Duration::from_secs_f64(greedy.stats.select_secs),
        greedy.boost_set
    );

    for eps in [1.0, 0.5, 0.2] {
        let dp = engine
            .solve(&Algorithm::TreeExact {
                dp_epsilon: Some(eps),
            })
            .expect("the graph is a bidirected tree");
        let dp_value = dp.delta_hat.unwrap();
        println!(
            "DP-Boost(ε={eps}): boost = {:.4} in {:.2?}",
            dp_value,
            std::time::Duration::from_secs_f64(dp.stats.select_secs)
        );
        // The FPTAS guarantee is relative to OPT; greedy is a lower bound
        // on OPT, so DP must reach (1−ε)·greedy.
        assert!(
            dp_value >= (1.0 - eps) * greedy_boost - 1e-9,
            "DP below its guarantee"
        );
    }
    println!("\n(the paper's Figures 14-15: greedy is near-optimal and much faster)");
}
