//! Boosting on bidirected trees: Greedy-Boost vs the DP-Boost FPTAS
//! (Section VI / VIII).
//!
//! Builds a complete binary tree with Trivalency probabilities (the
//! paper's tree workload), selects seeds, and compares the greedy
//! algorithm against the near-optimal dynamic program at several ε.
//!
//! Run with: `cargo run --release --example tree_boosting`

use kboost::graph::generators::complete_binary_tree;
use kboost::graph::probability::ProbabilityModel;
use kboost::graph::NodeId;
use kboost::tree::{dp_boost, greedy_boost, BidirectedTree};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 127;
    let k = 8;
    let mut rng = SmallRng::seed_from_u64(5);
    let topo = complete_binary_tree(n);
    let g = topo.into_bidirected_graph(ProbabilityModel::Trivalency, 2.0, &mut rng);
    // A few scattered seeds.
    let seeds: Vec<NodeId> = [0u32, 13, 40, 77, 101].map(NodeId).to_vec();
    let tree = BidirectedTree::from_digraph(&g, &seeds).unwrap();

    let t0 = Instant::now();
    let greedy = greedy_boost(&tree, k);
    let greedy_time = t0.elapsed();
    println!(
        "Greedy-Boost: boost = {:.4} in {:?} (set {:?})",
        greedy.boost, greedy_time, greedy.boost_set
    );

    for eps in [1.0, 0.5, 0.2] {
        let t0 = Instant::now();
        let dp = dp_boost(&tree, k, eps);
        println!(
            "DP-Boost(ε={eps}): boost = {:.4}, dp-value = {:.4}, δ = {:.5}, in {:?}",
            dp.boost,
            dp.dp_value,
            dp.delta,
            t0.elapsed()
        );
        // The FPTAS guarantee is relative to OPT; greedy is a lower bound
        // on OPT, so DP must reach (1−ε)·greedy.
        assert!(
            dp.boost >= (1.0 - eps) * greedy.boost - 1e-9,
            "DP below its guarantee"
        );
    }
    println!("\n(the paper's Figures 14-15: greedy is near-optimal and much faster)");
}
