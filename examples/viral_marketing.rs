//! Viral-marketing scenario: boost a campaign on a Digg-like network.
//!
//! A company has already seeded 20 influencers (found by IMM). It can now
//! hand out `k` coupons ("boosts"). This example compares PRR-Boost,
//! PRR-Boost-LB and the Section-VII baselines by simulated boost of
//! influence — a miniature of Figure 5.
//!
//! Run with: `cargo run --release --example viral_marketing`

use kboost::baselines::{
    high_degree_global, high_degree_local, pagerank_select, random_boost, WeightedDegree,
};
use kboost::core::{prr_boost, prr_boost_lb, BoostOptions};
use kboost::datasets::{Dataset, Scale};
use kboost::diffusion::monte_carlo::{estimate_boost, McConfig};
use kboost::rrset::imm::ImmParams;
use kboost::rrset::seeds::select_seeds;

fn main() {
    let k = 50;
    println!("generating a Digg-like network (scaled down)...");
    let g = Dataset::Digg.generate(Scale::Tiny, 2.0, 42);
    println!("n = {}, m = {}", g.num_nodes(), g.num_edges());

    let imm = ImmParams {
        k: 20,
        epsilon: 0.5,
        ell: 1.0,
        threads: 4,
        seed: 1,
        max_sketches: Some(400_000),
        min_sketches: 0,
    };
    let seeds = select_seeds(&g, &imm);
    println!("seeded {} influencers via IMM", seeds.len());

    let opts = BoostOptions {
        threads: 4,
        seed: 2,
        max_sketches: Some(400_000),
        min_sketches: 50_000,
        ..Default::default()
    };
    let (full, _pool) = prr_boost(&g, &seeds, k, &opts);
    let lb = prr_boost_lb(&g, &seeds, k, &opts);

    // Best-of-four HighDegree variants, as in the paper.
    let mc = McConfig::quick(3_000, 3);
    let best_of = |sets: Vec<Vec<kboost::graph::NodeId>>| {
        sets.into_iter()
            .map(|s| {
                let b = estimate_boost(&g, &seeds, &s, &mc);
                (b, s)
            })
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .map(|(b, _)| b)
            .unwrap()
    };
    use WeightedDegree::*;
    let hdg = best_of(
        [OutSum, OutSumDiscounted, InGain, InGainDiscounted]
            .into_iter()
            .map(|d| high_degree_global(&g, &seeds, k, d))
            .collect(),
    );
    let hdl = best_of(
        [OutSum, OutSumDiscounted, InGain, InGainDiscounted]
            .into_iter()
            .map(|d| high_degree_local(&g, &seeds, k, d))
            .collect(),
    );
    let pr = estimate_boost(&g, &seeds, &pagerank_select(&g, &seeds, k), &mc);
    let rnd = estimate_boost(&g, &seeds, &random_boost(&g, &seeds, k, 9), &mc);

    let full_b = estimate_boost(&g, &seeds, &full.best, &mc);
    let lb_b = estimate_boost(&g, &seeds, &lb.best, &mc);

    println!("\nboost of influence with k = {k} coupons:");
    println!("  PRR-Boost         {full_b:8.1}");
    println!("  PRR-Boost-LB      {lb_b:8.1}");
    println!("  HighDegreeGlobal  {hdg:8.1}");
    println!("  HighDegreeLocal   {hdl:8.1}");
    println!("  PageRank          {pr:8.1}");
    println!("  Random            {rnd:8.1}");
    assert!(
        full_b >= hdg * 0.8 && full_b >= pr * 0.8,
        "PRR-Boost should be competitive with every baseline"
    );
}
