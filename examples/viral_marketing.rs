//! Viral-marketing scenario: boost a campaign on a Digg-like network.
//!
//! A company has already seeded 20 influencers (found by IMM). It can now
//! hand out `k` coupons ("boosts"). Every competitor — PRR-Boost (the
//! Sandwich Approximation), PRR-Boost-LB and the Section-VII baselines —
//! runs through the engine's one `BoostAlgorithm` interface, and each
//! returned set is scored by simulated boost of influence — a miniature
//! of Figure 5.
//!
//! Run with: `cargo run --release --example viral_marketing`

use kboost::datasets::{Dataset, Scale};
use kboost::diffusion::monte_carlo::{estimate_boost, McConfig};
use kboost::engine::{Algorithm, BoostAlgorithm, EngineBuilder, WeightedDegree};
use kboost::rrset::imm::ImmParams;
use kboost::rrset::seeds::select_seeds;

fn main() {
    let k = 50;
    println!("generating a Digg-like network (scaled down)...");
    let g = Dataset::Digg.generate(Scale::Tiny, 2.0, 42);
    println!("n = {}, m = {}", g.num_nodes(), g.num_edges());

    let imm = ImmParams {
        k: 20,
        epsilon: 0.5,
        ell: 1.0,
        threads: 4,
        seed: 1,
        max_sketches: Some(400_000),
        min_sketches: 0,
    };
    let seeds = select_seeds(&g, &imm);
    println!("seeded {} influencers via IMM", seeds.len());

    // One engine serves every algorithm: the PRR pool is built once (by
    // the first estimator-based solve) and the baselines reuse it for
    // their Δ̂ diagnostics.
    let mut engine = EngineBuilder::new(g.clone())
        .seeds(seeds.clone())
        .k(k)
        .threads(4)
        .seed(2)
        .min_sketches(50_000)
        .max_sketches(400_000)
        .build()
        .expect("valid engine configuration");

    // Best-of-four HighDegree variants, as in the paper.
    let mc = McConfig::quick(3_000, 3);
    let score = |engine: &mut kboost::engine::Engine, algo: Algorithm| {
        let sol = engine.solve(&algo).expect("solve");
        (algo.name(), estimate_boost(&g, &seeds, &sol.boost_set, &mc))
    };
    let best_of = |scored: Vec<(String, f64)>| {
        scored
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(_, b)| b)
            .unwrap()
    };

    use WeightedDegree::*;
    let (_, full_b) = score(&mut engine, Algorithm::Sandwich);
    let (_, lb_b) = score(&mut engine, Algorithm::PrrBoostLb);
    let hdg = best_of(
        [OutSum, OutSumDiscounted, InGain, InGainDiscounted]
            .map(|d| score(&mut engine, Algorithm::HighDegreeGlobal(d)))
            .to_vec(),
    );
    let hdl = best_of(
        [OutSum, OutSumDiscounted, InGain, InGainDiscounted]
            .map(|d| score(&mut engine, Algorithm::HighDegreeLocal(d)))
            .to_vec(),
    );
    let (_, pr) = score(&mut engine, Algorithm::PageRank);
    let (_, rnd) = score(&mut engine, Algorithm::Random);

    println!("\nboost of influence with k = {k} coupons:");
    println!("  PRR-Boost         {full_b:8.1}");
    println!("  PRR-Boost-LB      {lb_b:8.1}");
    println!("  HighDegreeGlobal  {hdg:8.1}");
    println!("  HighDegreeLocal   {hdl:8.1}");
    println!("  PageRank          {pr:8.1}");
    println!("  Random            {rnd:8.1}");
    assert!(
        full_b >= hdg * 0.8 && full_b >= pr * 0.8,
        "PRR-Boost should be competitive with every baseline"
    );
}
