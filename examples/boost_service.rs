//! A boost-recommendation *service* under real concurrency: N query
//! workers answering batched evaluations over pinned pool snapshots
//! while a mutation feeder commits epochs underneath them.
//!
//! The engine's serving cell ([`Engine::serving`]) decouples the two
//! clocks of a production deployment. The maintainer publishes an
//! immutable epoch snapshot after every committed mutation epoch
//! (pointer swap, never an in-place mutation of published state); query
//! threads pin a snapshot per batch and answer `Δ̂`/`µ̂`/`evaluate_many`
//! lock-free. This harness demonstrates the whole contract live:
//!
//! * query workers keep answering while epochs commit — no reader ever
//!   waits on refresh sampling;
//! * answers from a pinned epoch are **byte-identical** to that epoch's
//!   frozen oracle, no matter how many epochs commit meanwhile;
//! * `evaluate_many` (one arena traversal for a whole candidate batch)
//!   matches the per-set `Engine::evaluate` oracle bit-for-bit;
//! * a malformed batch is still a typed rejection, and the service keeps
//!   serving the last committed epoch;
//! * the attached [`MetricsRecorder`] sees the whole lifecycle — solve
//!   stages, sampler chunks, epoch commits, publishes, pins, lag —
//!   without perturbing a single sampled byte, and
//!   [`Engine::metrics`](kboost::engine::Engine::metrics) reads it back
//!   at the end. Set `KBOOST_OBS_JSONL=/path/to/file` to also dump the
//!   full export as JSON lines.
//!
//! Run with: `cargo run --release --example boost_service`
//!
//! [`Engine::serving`]: kboost::engine::Engine::serving
//! [`MetricsRecorder`]: kboost::obs::MetricsRecorder

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use kboost::core::EvalManyScratch;
use kboost::engine::{
    Algorithm, EdgeProbs, EngineBuilder, KboostError, MutationLog, NodeId, Sampling,
};
use kboost::graph::generators::preferential_attachment;
use kboost::graph::probability::{boost_probability, ProbabilityModel};
use kboost::obs::MetricsRecorder;
use kboost::rrset::seeds::select_random_nodes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const QUERY_WORKERS: usize = 3;
const EPOCHS: u64 = 3;

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let g = preferential_attachment(
        3_000,
        4,
        0.15,
        ProbabilityModel::LogNormal {
            mu: -1.93,
            sigma: 1.0,
            cap: 1.0,
        },
        2.0,
        &mut rng,
    );
    let seeds = select_random_nodes(&g, 20, &[], 7);
    println!(
        "service over n = {}, m = {} ({} seeds)",
        g.num_nodes(),
        g.num_edges(),
        seeds.len()
    );

    // Online mode (fixed-size sampling + shard pipeline) is what makes a
    // serving cell possible: the maintainer owns the pool and publishes
    // a snapshot per committed epoch.
    let recorder = Arc::new(MetricsRecorder::new());
    let mut engine = EngineBuilder::new(g.clone())
        .seeds(seeds)
        .k(20)
        .threads(2)
        .seed(42)
        .sampling(Sampling::Fixed { samples: 20_000 })
        .recorder(recorder.clone())
        .build()
        .expect("valid engine configuration");

    let first = engine.solve(&Algorithm::PrrBoost).expect("solve");
    println!(
        "[epoch 0] pool: {} samples ({} boostable, built in {:.2}s); Δ̂ = {:.2}",
        first.stats.total_samples,
        first.stats.boostable,
        first.stats.build_secs,
        first.delta_hat.unwrap(),
    );

    // Candidate batches a recommendation tier would score: perturbations
    // around the solved set plus random probes.
    let mut probe_rng = SmallRng::seed_from_u64(0xFACADE);
    let n = engine.graph().num_nodes() as u32;
    let candidates: Vec<Vec<NodeId>> = (0..96)
        .map(|i| {
            let mut set = first.boost_set.clone();
            set.truncate(12);
            for _ in 0..(i % 5) + 1 {
                set[(probe_rng.random_range(0..12u32)) as usize] =
                    NodeId(probe_rng.random_range(0..n));
            }
            set
        })
        .collect();

    // The serving cell: cloned into every query worker. The per-set
    // evaluate loop is the oracle the batched path must match.
    let service = engine.serving().expect("online mode serves snapshots");
    let oracle: Vec<(f64, f64)> = candidates
        .iter()
        .map(|c| engine.evaluate(c).expect("pool built"))
        .collect();
    assert_eq!(
        engine.evaluate_many(&candidates).expect("pool built"),
        oracle,
        "evaluate_many must match the per-set oracle bit-for-bit"
    );

    // Pin epoch 0 now; after all epochs commit this pin must still
    // answer byte-identically.
    let pinned_epoch0 = service.pin();
    let pinned_answers = pinned_epoch0.evaluate_many(&candidates);
    assert_eq!(pinned_answers, oracle);

    let stop = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    std::thread::scope(|s| {
        // N query workers: pin per batch, score the whole candidate
        // batch, and verify self-consistency of the pinned epoch.
        for w in 0..QUERY_WORKERS {
            let service = service.clone();
            let (stop, queries, candidates) = (&stop, &queries, &candidates);
            s.spawn(move || {
                let mut served = 0u64;
                let mut last_epoch = 0u64;
                // One reusable workspace per worker — the batched kernel
                // allocates nothing per call.
                let mut scratch = EvalManyScratch::default();
                while !stop.load(Ordering::Relaxed) {
                    let snap = service.pin();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "published epochs must be monotone"
                    );
                    last_epoch = snap.epoch();
                    let batch = snap.evaluate_many_with(candidates, &mut scratch);
                    // Same pin ⇒ same frozen pool ⇒ identical answers,
                    // scratch or allocating path.
                    assert_eq!(snap.evaluate_many(candidates), batch);
                    service.record_query(&snap, batch.len() as u64);
                    served += batch.len() as u64;
                }
                queries.fetch_add(served, Ordering::Relaxed);
                let _ = w;
            });
        }

        // The mutation feeder: the engine handle stays on this thread
        // and commits epochs while the workers above keep serving.
        let mut log = MutationLog::new();
        let mut churn_rng = SmallRng::seed_from_u64(0xC0FFEE);
        let edges: Vec<(NodeId, NodeId, EdgeProbs)> = engine.graph().edges().collect();
        for _ in 0..EPOCHS {
            for _ in 0..40 {
                let (u, v, _) = edges[churn_rng.random_range(0..edges.len())];
                let p: f64 = churn_rng.random_range(0.01..0.3);
                log.set_probs(u, v, EdgeProbs::new(p, boost_probability(p, 2.0)).unwrap());
            }
            let batch = log.seal_epoch();
            let report = engine.apply_mutations(&batch).expect("contiguous epoch");
            println!(
                "[epoch {}] {} mutations invalidated {} samples, {} redrawn{}; published",
                report.epoch,
                batch.mutations.len(),
                report.invalidated,
                report.drawn_stored + report.drawn_empty,
                if report.compacted { ", compacted" } else { "" },
            );
        }

        // A malformed batch is rejected at ingress; the service keeps
        // serving the last committed epoch.
        let mut bad = MutationLog::new();
        bad.remove_edge(NodeId(1_000_000), NodeId(0));
        let mut bad_batch = bad.seal_epoch();
        bad_batch.epoch = engine.epoch() + 1;
        match engine.apply_mutations(&bad_batch) {
            Err(KboostError::Mutation(e)) => println!("[fault] malformed batch rejected: {e}"),
            other => panic!("expected a typed rejection, got {other:?}"),
        }
        assert_eq!(service.pin().epoch(), EPOCHS);

        stop.store(true, Ordering::Relaxed);
    });

    // The epoch-0 pin survived every publish untouched: byte-identical
    // answers after three committed epochs and a rejected batch.
    assert_eq!(pinned_epoch0.epoch(), 0);
    assert_eq!(pinned_epoch0.evaluate_many(&candidates), pinned_answers);

    // The head snapshot reflects the final epoch and matches the
    // engine's own (maintained-pool) answers exactly.
    let head = service.pin();
    let head_batch = head.evaluate_many(&candidates);
    let head_oracle: Vec<(f64, f64)> = candidates
        .iter()
        .map(|c| engine.evaluate(c).expect("pool built"))
        .collect();
    assert_eq!(head_batch, head_oracle, "head snapshot drifted from pool");

    let stats = service.stats();
    println!(
        "\nOK: {} queries served across {} workers while {} epochs published \
         (head epoch {}); epoch-0 pin stayed byte-identical throughout.",
        queries.load(Ordering::Relaxed),
        QUERY_WORKERS,
        stats.publishes,
        stats.epoch,
    );

    // The recorder watched the whole lifecycle without consuming any
    // randomness — every assertion above held with it attached.
    let metrics = engine.metrics();
    println!("\nfinal metrics snapshot (Engine::metrics):");
    println!(
        "  solves = {}, sampler chunks = {}, samples drawn = {}",
        metrics.counter("engine.solves").unwrap_or(0),
        metrics.counter("sampler.chunks").unwrap_or(0),
        metrics.counter("sampler.samples").unwrap_or(0),
    );
    println!(
        "  epochs committed = {}, invalidated = {}, resampled = {}, rollbacks = {}",
        metrics.counter("online.epochs").unwrap_or(0),
        metrics.counter("online.invalidated").unwrap_or(0),
        metrics.counter("online.resampled").unwrap_or(0),
        metrics.counter("online.rollbacks").unwrap_or(0),
    );
    println!(
        "  publishes = {}, pins = {}, queries = {}",
        metrics.counter("serve.publishes").unwrap_or(0),
        metrics.counter("serve.pins").unwrap_or(0),
        metrics.counter("serve.queries").unwrap_or(0),
    );
    if let Some(publish) = metrics.histogram("serve.publish_secs") {
        println!(
            "  publish latency: p50 {:.2} ms, p90 {:.2} ms, max {:.2} ms (n={})",
            publish.p50 * 1e3,
            publish.p90 * 1e3,
            publish.max * 1e3,
            publish.count,
        );
    }
    if let Some(lag) = metrics.histogram("serve.epoch_lag") {
        println!(
            "  epoch lag: p50 {:.1}, p90 {:.1}, max {:.1} epochs (n={})",
            lag.p50, lag.p90, lag.max, lag.count,
        );
    }
    assert!(metrics.counter("engine.solves").unwrap_or(0) >= 1);
    assert!(metrics.counter("sampler.chunks").unwrap_or(0) >= 1);
    assert_eq!(metrics.counter("online.epochs"), Some(EPOCHS));
    assert!(metrics
        .histogram("serve.publish_secs")
        .is_some_and(|h| h.count == EPOCHS));
    assert!(metrics
        .histogram("serve.epoch_lag")
        .is_some_and(|h| h.count > 0));

    // Optional machine-readable export for CI and offline analysis.
    if let Ok(path) = std::env::var("KBOOST_OBS_JSONL") {
        std::fs::write(&path, recorder.to_json_lines()).expect("write JSONL export");
        println!("wrote metrics export to {path}");
    }
}
