//! A boost-recommendation *service*: one engine serving queries while the
//! social network evolves underneath it.
//!
//! Production networks never stand still — follow edges appear, activity
//! re-weights influence probabilities, accounts vanish. Rebuilding the
//! PRR pool per change costs minutes; the engine's online mode pays only
//! for the invalidated share. This example builds an engine over a
//! scale-free network — under a startup **latency budget**, with a
//! progress observer streaming partial accuracy — then alternates
//! mutation epochs (`Engine::apply_mutations`) with boost queries
//! (`Engine::solve`), demonstrates that a **cancelled epoch rolls back**
//! and retries verbatim, and that a **malformed batch** is a typed
//! rejection, not a crash — the same handle throughout.
//!
//! Run with: `cargo run --release --example boost_service`

use kboost::engine::{
    Algorithm, Budget, CancelFlag, EdgeProbs, EngineBuilder, KboostError, MutationLog, NodeId,
    Sampling,
};
use kboost::graph::generators::preferential_attachment;
use kboost::graph::probability::{boost_probability, ProbabilityModel};
use kboost::rrset::seeds::select_random_nodes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let g = preferential_attachment(
        3_000,
        4,
        0.15,
        ProbabilityModel::LogNormal {
            mu: -1.93,
            sigma: 1.0,
            cap: 1.0,
        },
        2.0,
        &mut rng,
    );
    let seeds = select_random_nodes(&g, 20, &[], 7);
    println!(
        "service over n = {}, m = {} ({} seeds)",
        g.num_nodes(),
        g.num_edges(),
        seeds.len()
    );

    // Online mode: fixed-size sampling keeps the estimator denominator
    // constant across epochs, so the maintainer can swap exactly the
    // stale share.
    let mut engine = EngineBuilder::new(g.clone())
        .seeds(seeds)
        .k(20)
        .threads(2)
        .seed(42)
        .sampling(Sampling::Fixed { samples: 20_000 })
        .build()
        .expect("valid engine configuration");

    // Startup under a latency budget: cap the warm-up at half the target
    // samples and stream progress. The solve returns a valid partial
    // answer flagged `interrupted`, carrying the ε those samples honestly
    // certify — a service can answer immediately and refine later.
    let warmup = engine
        .solve_within(
            &Algorithm::PrrBoost,
            &Budget::unlimited().max_samples(10_000).observe(|p| {
                if let (Some(delta), Some(eps)) = (p.delta_hat, p.achieved_epsilon) {
                    println!(
                        "  [warmup] {} samples: running Δ̂ = {delta:.2}, achieved ε = {eps:.2}",
                        p.samples
                    );
                }
            }),
        )
        .expect("budgeted solve");
    println!(
        "[warmup] partial pool: {} samples, interrupted = {}, achieved ε = {:.2}, Δ̂ = {:.2}",
        warmup.stats.total_samples,
        warmup.stats.interrupted,
        warmup.stats.achieved_epsilon.unwrap(),
        warmup.delta_hat.unwrap(),
    );

    // A full-accuracy engine for the rest of the service's life.
    let mut engine = EngineBuilder::new(g.clone())
        .seeds(select_random_nodes(&g, 20, &[], 7))
        .k(20)
        .threads(2)
        .seed(42)
        .sampling(Sampling::Fixed { samples: 20_000 })
        .build()
        .expect("valid engine configuration");
    let first = engine.solve(&Algorithm::PrrBoost).expect("solve");
    println!(
        "[epoch 0] pool: {} samples ({} boostable, built in {:.2}s); \
         recommended boosts Δ̂ = {:.2}, achieved ε = {:.2}",
        first.stats.total_samples,
        first.stats.boostable,
        first.stats.build_secs,
        first.delta_hat.unwrap(),
        first.stats.achieved_epsilon.unwrap(),
    );

    // Simulate traffic: each epoch re-draws some edge probabilities
    // (fresh action logs) and inserts a few new follow edges.
    let mut log = MutationLog::new();
    let mut churn_rng = SmallRng::seed_from_u64(0xC0FFEE);
    let edges: Vec<(NodeId, NodeId, EdgeProbs)> = engine.graph().edges().collect();
    for _ in 0..3 {
        for _ in 0..40 {
            let (u, v, _) = edges[churn_rng.random_range(0..edges.len())];
            let p: f64 = churn_rng.random_range(0.01..0.3);
            log.set_probs(u, v, EdgeProbs::new(p, boost_probability(p, 2.0)).unwrap());
        }
        for _ in 0..5 {
            let u = churn_rng.random_range(0..engine.graph().num_nodes() as u32);
            let v = churn_rng.random_range(0..engine.graph().num_nodes() as u32);
            if u == v {
                continue;
            }
            let p: f64 = churn_rng.random_range(0.01..0.2);
            log.insert_edge(
                NodeId(u),
                NodeId(v),
                EdgeProbs::new(p, boost_probability(p, 2.0)).unwrap(),
            );
        }
        // Dry-run the staleness rule to see what this batch would cost,
        // then seal and apply it.
        let would_invalidate = engine
            .stale_graphs(log.pending())
            .expect("online mode")
            .len();
        let batch = log.seal_epoch();
        let report = engine.apply_mutations(&batch).expect("contiguous epoch");
        let sol = engine.solve(&Algorithm::PrrBoost).expect("solve");
        println!(
            "[epoch {}] {} mutations invalidated {} samples (dry run predicted {}); \
             {} redrawn, {} live{}; fresh recommendation Δ̂ = {:.2}",
            report.epoch,
            batch.mutations.len(),
            report.invalidated,
            would_invalidate,
            report.drawn_stored + report.drawn_empty,
            report.live_graphs,
            if report.compacted { ", compacted" } else { "" },
            sol.delta_hat.unwrap(),
        );
        assert_eq!(report.invalidated as usize, would_invalidate);
    }

    // Fault tolerance, live. A malformed batch — an account id outside
    // the universe — is rejected at ingress with a typed error; nothing
    // is applied and the engine keeps serving.
    let mut bad = MutationLog::new();
    bad.remove_edge(NodeId(1_000_000), NodeId(0));
    match engine.apply_mutations(&bad.seal_epoch()) {
        Err(KboostError::Mutation(e)) => println!("[fault] malformed batch rejected: {e}"),
        other => panic!("expected a typed rejection, got {other:?}"),
    }

    // An epoch cancelled mid-refresh (deploy rollover, shed load) rolls
    // the pool back byte-identically; the identical batch retries
    // verbatim once the pressure clears. Re-weight a swath of edges so
    // the refresh has real work to interrupt.
    let mut log = MutationLog::new();
    let reweighted: Vec<(NodeId, NodeId)> = engine
        .graph()
        .edges()
        .map(|(u, v, _)| (u, v))
        .take(200)
        .collect();
    for (u, v) in reweighted {
        log.set_probs(
            u,
            v,
            EdgeProbs::new(0.05, boost_probability(0.05, 2.0)).unwrap(),
        );
    }
    // The service's own epoch counter is at 3; re-number the fresh log's
    // batch to follow it.
    let mut batch = log.seal_epoch();
    batch.epoch = engine.epoch() + 1;
    let cancelled = CancelFlag::new();
    cancelled.cancel();
    match engine.apply_mutations_within(&batch, &Budget::unlimited().cancel_flag(cancelled)) {
        Err(KboostError::Interrupted { epoch, cause }) => {
            println!("[fault] epoch {epoch} refresh {cause}; pool rolled back");
        }
        other => panic!("expected an interrupted epoch, got {other:?}"),
    }
    assert_eq!(engine.epoch(), 3, "rollback must not consume the epoch");
    let report = engine.apply_mutations(&batch).expect("verbatim retry");
    println!(
        "[fault] retry committed epoch {} ({} samples refreshed)",
        report.epoch,
        report.drawn_stored + report.drawn_empty
    );

    println!("\nOK: one engine served selections across the whole mutation history.");
}
