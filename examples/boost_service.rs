//! A boost-recommendation *service*: one engine serving queries while the
//! social network evolves underneath it.
//!
//! Production networks never stand still — follow edges appear, activity
//! re-weights influence probabilities, accounts vanish. Rebuilding the
//! PRR pool per change costs minutes; the engine's online mode pays only
//! for the invalidated share. This example builds an engine over a
//! scale-free network, then alternates mutation epochs
//! (`Engine::apply_mutations`) with boost queries (`Engine::solve`) —
//! the same handle throughout.
//!
//! Run with: `cargo run --release --example boost_service`

use kboost::engine::{Algorithm, EdgeProbs, EngineBuilder, MutationLog, NodeId, Sampling};
use kboost::graph::generators::preferential_attachment;
use kboost::graph::probability::{boost_probability, ProbabilityModel};
use kboost::rrset::seeds::select_random_nodes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let g = preferential_attachment(
        3_000,
        4,
        0.15,
        ProbabilityModel::LogNormal {
            mu: -1.93,
            sigma: 1.0,
            cap: 1.0,
        },
        2.0,
        &mut rng,
    );
    let seeds = select_random_nodes(&g, 20, &[], 7);
    println!(
        "service over n = {}, m = {} ({} seeds)",
        g.num_nodes(),
        g.num_edges(),
        seeds.len()
    );

    // Online mode: fixed-size sampling keeps the estimator denominator
    // constant across epochs, so the maintainer can swap exactly the
    // stale share.
    let mut engine = EngineBuilder::new(g.clone())
        .seeds(seeds)
        .k(20)
        .threads(2)
        .seed(42)
        .sampling(Sampling::Fixed { samples: 20_000 })
        .build()
        .expect("valid engine configuration");

    let first = engine.solve(&Algorithm::PrrBoost).expect("solve");
    println!(
        "[epoch 0] pool: {} samples ({} boostable, built in {:.2}s); \
         recommended boosts Δ̂ = {:.2}",
        first.stats.total_samples,
        first.stats.boostable,
        first.stats.build_secs,
        first.delta_hat.unwrap(),
    );

    // Simulate traffic: each epoch re-draws some edge probabilities
    // (fresh action logs) and inserts a few new follow edges.
    let mut log = MutationLog::new();
    let mut churn_rng = SmallRng::seed_from_u64(0xC0FFEE);
    let edges: Vec<(NodeId, NodeId, EdgeProbs)> = engine.graph().edges().collect();
    for _ in 0..3 {
        for _ in 0..40 {
            let (u, v, _) = edges[churn_rng.random_range(0..edges.len())];
            let p: f64 = churn_rng.random_range(0.01..0.3);
            log.set_probs(u, v, EdgeProbs::new(p, boost_probability(p, 2.0)).unwrap());
        }
        for _ in 0..5 {
            let u = churn_rng.random_range(0..engine.graph().num_nodes() as u32);
            let v = churn_rng.random_range(0..engine.graph().num_nodes() as u32);
            if u == v {
                continue;
            }
            let p: f64 = churn_rng.random_range(0.01..0.2);
            log.insert_edge(
                NodeId(u),
                NodeId(v),
                EdgeProbs::new(p, boost_probability(p, 2.0)).unwrap(),
            );
        }
        // Dry-run the staleness rule to see what this batch would cost,
        // then seal and apply it.
        let would_invalidate = engine
            .stale_graphs(log.pending())
            .expect("online mode")
            .len();
        let batch = log.seal_epoch();
        let report = engine.apply_mutations(&batch).expect("contiguous epoch");
        let sol = engine.solve(&Algorithm::PrrBoost).expect("solve");
        println!(
            "[epoch {}] {} mutations invalidated {} samples (dry run predicted {}); \
             {} redrawn, {} live{}; fresh recommendation Δ̂ = {:.2}",
            report.epoch,
            batch.mutations.len(),
            report.invalidated,
            would_invalidate,
            report.drawn_stored + report.drawn_empty,
            report.live_graphs,
            if report.compacted { ", compacted" } else { "" },
            sol.delta_hat.unwrap(),
        );
        assert_eq!(report.invalidated as usize, would_invalidate);
    }
    println!("\nOK: one engine served selections across the whole mutation history.");
}
