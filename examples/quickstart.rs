//! Quickstart: the paper's Figure-1 example, end to end through the
//! unified engine API.
//!
//! Builds the 3-node graph `s → v0 → v1`, verifies the boosted-influence
//! numbers from the paper exactly, and runs the Sandwich Approximation
//! (PRR-Boost, Algorithm 2) through `kboost::engine` to find the best
//! single node to boost.
//!
//! Run with: `cargo run --release --example quickstart`

use kboost::diffusion::exact::{exact_boost, exact_sigma};
use kboost::diffusion::monte_carlo::{estimate_boost, McConfig};
use kboost::engine::{Algorithm, EngineBuilder};
use kboost::graph::{GraphBuilder, NodeId};

fn main() {
    // Figure 1: edge s→v0 with (p, p') = (0.2, 0.4); v0→v1 with (0.1, 0.2).
    let mut builder = GraphBuilder::new(3);
    builder.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
    builder.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
    let g = builder.build().unwrap();
    let seeds = vec![NodeId(0)];

    println!("=== Figure 1 of the paper ===");
    println!(
        "σ_S(∅)        = {:.4}  (paper: 1.22)",
        exact_sigma(&g, &seeds, &[])
    );
    for (label, set) in [
        ("Δ_S({v0})    ", vec![NodeId(1)]),
        ("Δ_S({v1})    ", vec![NodeId(2)]),
        ("Δ_S({v0,v1}) ", vec![NodeId(1), NodeId(2)]),
    ] {
        println!("{label} = {:.4}", exact_boost(&g, &seeds, &set));
    }

    // The same quantity by Monte-Carlo simulation (how large graphs are
    // evaluated).
    let mc = McConfig::quick(50_000, 7);
    let sim = estimate_boost(&g, &seeds, &[NodeId(1)], &mc);
    println!("Monte-Carlo Δ_S({{v0}}) ≈ {sim:.4}");

    // PRR-Boost with k = 1 must pick v0 (node 1), not v1: boosting close
    // to the seed compounds down the path. The engine validates the whole
    // configuration up front and runs Algorithm 2 (the Sandwich
    // Approximation over B_µ and B_Δ) behind one typed call.
    let mut engine = EngineBuilder::new(g)
        .seeds(seeds)
        .k(1)
        .threads(2)
        .min_sketches(50_000)
        .max_sketches(100_000)
        .build()
        .expect("valid engine configuration");
    let solution = engine.solve(&Algorithm::Sandwich).expect("solve");

    println!("\n=== PRR-Boost through the engine (k = 1) ===");
    println!("selected boost set: {:?}", solution.boost_set);
    println!("estimated boost Δ̂ = {:.4}", solution.delta_hat.unwrap());
    println!("PRR-graphs sampled: {}", solution.stats.total_samples);
    let cert = solution.certificate.as_ref().unwrap();
    println!(
        "sandwich certificate: Δ̂(B_µ) = {:.4}, Δ̂(B_Δ) = {:.4}, µ̂/Δ̂ = {:.3}",
        cert.delta_hat_mu, cert.delta_hat_delta, cert.ratio
    );
    assert_eq!(
        solution.boost_set,
        vec![NodeId(1)],
        "PRR-Boost should boost v0"
    );
    println!("\nOK: PRR-Boost agrees with the exact analysis.");
}
